//! The Michael–Scott lock-free FIFO queue (PODC 1996), made durable through FliT.
//!
//! The queue is the canonical producer/consumer structure of the persistent-memory
//! literature ("Highly-Efficient Persistent FIFO Queues", Fatourou et al.; the
//! log-free durable queue of Friedman et al., PPoPP 2018). This implementation is
//! textbook Michael–Scott — a singly linked list with a permanent sentinel, a `head`
//! pointer for dequeuers and a lazily swung `tail` pointer for enqueuers — with
//! persistence injected entirely through the [`Policy`] / [`Durability`] type
//! parameters, exactly like the map structures of [`flit_datastructs`].
//!
//! ## P-marking
//!
//! | instruction | flag | why |
//! |---|---|---|
//! | node initialisation | [`Durability::STORE`], private path | the publishing CAS depends on the node's contents |
//! | link CAS (`tail.next`: null → node) | [`Durability::STORE`] | the linearization point of enqueue: the persisted `next` chain *is* the durable queue |
//! | `tail` swings (publish + helping) | [`Durability::INDEX_STORE`] | auxiliary index state — after a crash `tail` is recoverable by walking `next` links from `head`, so the optimised methods leave it volatile |
//! | `head` CAS (dequeue) | [`Durability::STORE`] | the linearization point of dequeue: a completed dequeue must not resurrect its value after a crash |
//! | `head`/`tail` reads | [`Durability::TRAVERSAL_LOAD`] | positioning reads |
//! | `next`/value reads | [`Durability::CRITICAL_LOAD`] | the reads the operation's result depends on |
//!
//! Under [`Automatic`](flit_datastructs::Automatic) every one of these is a
//! p-instruction (Theorem 3.1); under
//! [`Manual`](flit_datastructs::Manual) only the two linearization-point CASes and
//! the node initialisation are persisted, which matches the hand-tuned durable
//! queues of the literature. In every variant, dequeue-of-empty is a read-only
//! operation — with FliT its p-loads flush nothing (no store is pending), while the
//! plain transformation pays a `pwb` per p-load; that asymmetry is the queue-shaped
//! version of the paper's read-elision headline.
//!
//! ## Crash recovery
//!
//! Recovery is **image-only**: nodes and the queue's root-pointer pair live in a
//! [`Arena`], the root pair is registered in the arena's recovery-root
//! table under [`roots::QUEUE_ROOTS`], and
//! [`MsQueue::recover_in_image`] reads the persisted `head` word and walks
//! persisted `next`/value words straight out of the adversarial [`CrashImage`] —
//! no live-structure pointer, no live-memory reads. For any variant whose `STORE`
//! flag is persisted, the recovered sequence is exactly the durably linearized
//! queue contents at the crash point; a crash before the root registration
//! recovers to the empty queue.

use std::marker::PhantomData;
use std::sync::Arc;

use flit::{FlitDb, FlitHandle, PFlag, PersistWord, Policy};
use flit_alloc::{roots, Arena, ArenaConfig};
use flit_datastructs::Durability;
use flit_ebr::Guard;
use flit_pmem::CrashImage;

use crate::queue::ConcurrentQueue;

/// A node of the queue. Both fields are written once through the private-store path
/// before the node is published, so they are recorded with the persistence tracker
/// and recoverable from a crash image; `next` is additionally CAS-ed by enqueuers.
pub(crate) struct Node<P: Policy> {
    pub(crate) value: P::Word<u64>,
    pub(crate) next: P::Word<usize>,
}

/// Byte offsets of a node's recovery words within its arena slot.
struct NodeLayout {
    value: usize,
    next: usize,
}

impl<P: Policy> Node<P> {
    fn layout() -> NodeLayout {
        let probe = Node::<P> {
            value: P::Word::<u64>::new(0),
            next: P::Word::<usize>::new(0),
        };
        let base = &probe as *const Node<P> as usize;
        NodeLayout {
            value: probe.value.addr() - base,
            next: probe.next.addr() - base,
        }
    }

    /// Allocate a node from the arena and persist its initial contents (value +
    /// null `next`) according to `flag`, so the publishing CAS can depend on them.
    fn alloc(h: &FlitHandle<'_, P>, arena: &Arena, value: u64, flag: PFlag) -> *mut Self {
        let node: *mut Self = arena.alloc_init(
            &h.pmem(),
            Node {
                value: P::Word::<u64>::new(value),
                next: P::Word::<usize>::new(0),
            },
        );
        let node_ref = unsafe { &*node };
        // The node is still private: volatile private stores record the words with
        // the backend (for crash tracking) without flushing, then one persist of the
        // whole node (a single flush + fence — the slot is cache-line aligned, so
        // both words always share one line) makes it durable before the publishing
        // CAS can depend on it.
        node_ref.value.store_private(h, value, PFlag::Volatile);
        node_ref.next.store_private(h, 0, PFlag::Volatile);
        h.persist_object(node_ref, flag);
        node
    }
}

/// The queue's root pointers, allocated in their own arena slot so recovery can
/// find them through the root table.
struct Roots<P: Policy> {
    head: P::Word<usize>,
    tail: P::Word<usize>,
}

/// Byte offsets of the root words within the roots slot.
struct RootsLayout {
    head: usize,
}

impl<P: Policy> Roots<P> {
    fn layout() -> RootsLayout {
        let probe = Roots::<P> {
            head: P::Word::<usize>::new(0),
            tail: P::Word::<usize>::new(0),
        };
        RootsLayout {
            head: probe.head.addr() - &probe as *const Roots<P> as usize,
        }
    }
}

/// Michael–Scott lock-free FIFO queue over persistence policy `P` and durability
/// method `D`.
pub struct MsQueue<P: Policy, D: Durability> {
    roots: *mut Roots<P>,
    arena: Arc<Arena>,
    db: FlitDb<P>,
    _durability: PhantomData<D>,
}

// SAFETY: all shared mutable state is accessed through atomic persist-words, and node
// lifetime is managed by the EBR collector, as in the map structures.
unsafe impl<P: Policy, D: Durability> Send for MsQueue<P, D> {}
unsafe impl<P: Policy, D: Durability> Sync for MsQueue<P, D> {}

/// What [`MsQueue::recover`] reconstructs from a [`CrashImage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredQueue {
    /// The queue contents in FIFO order, head first.
    pub values: Vec<u64>,
    /// `true` when a node was reachable through a persisted `next` link but its value
    /// word was missing from the image. For any durability method whose `STORE` flag
    /// is persisted this indicates a durability bug: nodes are persisted before the
    /// link that publishes them.
    pub truncated: bool,
}

impl<P: Policy, D: Durability> MsQueue<P, D> {
    /// Create an empty queue in `db`, with its own arena. The sentinel node and
    /// the root-pointer slot are persisted — and the roots registered under
    /// [`roots::QUEUE_ROOTS`] — before the constructor returns, so a crash at
    /// *any* construction event recovers to either "no queue yet" or the empty
    /// queue, never garbage. Construction runs under a temporary handle of `db`.
    pub fn new(db: &FlitDb<P>) -> Self {
        Self::with_config(db, db.arena_defaults())
    }

    /// [`MsQueue::new`] with an explicit node-arena [`ArenaConfig`], so a queue
    /// expected to stay short (a per-shard request mailbox, say) grows its arena
    /// in small steps instead of the default chunk size.
    pub fn with_config(db: &FlitDb<P>, config: ArenaConfig) -> Self {
        let arena = db.new_arena_for::<Node<P>>(config);
        let h = db.handle();
        let sentinel = Node::<P>::alloc(&h, &arena, 0, PFlag::Persisted) as usize;
        let roots: *mut Roots<P> = arena.alloc_init(
            &h.pmem(),
            Roots {
                head: P::Word::<usize>::new(sentinel),
                tail: P::Word::<usize>::new(sentinel),
            },
        );
        let roots_ref = unsafe { &*roots };
        roots_ref.head.store_private(&h, sentinel, PFlag::Volatile);
        roots_ref.tail.store_private(&h, sentinel, PFlag::Volatile);
        h.persist_object(roots_ref, PFlag::Persisted);
        arena.register_root(&h.pmem(), roots::QUEUE_ROOTS, roots as usize);
        drop(h);
        Self {
            roots,
            arena,
            db: db.clone(),
            _durability: PhantomData,
        }
    }

    #[inline]
    fn roots(&self) -> &Roots<P> {
        // SAFETY: the roots slot is allocated in `new` and lives as long as the
        // arena, which `self` keeps alive.
        unsafe { &*self.roots }
    }

    /// The database this queue lives in.
    pub fn db(&self) -> &FlitDb<P> {
        &self.db
    }

    /// The arena this queue allocates nodes from.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// The address of the persisted `head` root word (used by crash tests).
    pub fn head_addr(&self) -> usize {
        self.roots().head.addr()
    }

    /// The address of the persisted `tail` root word (used by crash tests).
    pub fn tail_addr(&self) -> usize {
        self.roots().tail.addr()
    }

    /// Retire the old sentinel through the collector: its slot returns to the
    /// arena's recycle list once no pinned thread can still reach it.
    fn retire(&self, guard: &Guard<'_>, node: *mut Node<P>) {
        // SAFETY: the node was unlinked by the head CAS before retirement and is
        // retired once.
        unsafe { self.arena.defer_recycle(guard, node as usize) };
    }

    fn enqueue_impl(&self, h: &FlitHandle<'_, P>, value: u64) {
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let _guard = h.pin();
        let node = Node::<P>::alloc(h, &self.arena, value, D::STORE) as usize;
        loop {
            let tail = self.roots().tail.load(h, D::TRAVERSAL_LOAD);
            let tail_node = unsafe { &*(tail as *const Node<P>) };
            let next = tail_node.next.load(h, D::CRITICAL_LOAD);
            if tail != self.roots().tail.load(h, D::TRAVERSAL_LOAD) {
                continue;
            }
            if next != 0 {
                // Tail is lagging: help swing it forward and retry.
                let _ = self
                    .roots()
                    .tail
                    .compare_exchange(h, tail, next, D::INDEX_STORE);
                continue;
            }
            if tail_node
                .next
                .compare_exchange(h, 0, node, D::STORE)
                .is_ok()
            {
                // Linearization point. The tail swing is best-effort index
                // maintenance; any thread can complete it.
                let _ = self
                    .roots()
                    .tail
                    .compare_exchange(h, tail, node, D::INDEX_STORE);
                h.operation_completion();
                return;
            }
        }
    }

    fn dequeue_impl(&self, h: &FlitHandle<'_, P>) -> Option<u64> {
        debug_assert_eq!(h.db_id(), self.db.id(), "handle from another FlitDb");
        let guard = h.pin();
        loop {
            let head = self.roots().head.load(h, D::TRAVERSAL_LOAD);
            let head_node = unsafe { &*(head as *const Node<P>) };
            let next = head_node.next.load(h, D::CRITICAL_LOAD);
            if head != self.roots().head.load(h, D::TRAVERSAL_LOAD) {
                continue;
            }
            if next == 0 {
                // Empty: a read-only operation. NVTraverse-style methods re-read the
                // link that determines the result as a p-load before returning.
                if D::TRANSITION_DEPTH > 0 {
                    let _ = head_node.next.load(h, PFlag::Persisted);
                }
                h.operation_completion();
                return None;
            }
            let tail = self.roots().tail.load(h, D::TRAVERSAL_LOAD);
            if head == tail {
                // Tail is lagging behind the node we are about to expose: help.
                let _ = self
                    .roots()
                    .tail
                    .compare_exchange(h, tail, next, D::INDEX_STORE);
                continue;
            }
            let next_node = unsafe { &*(next as *const Node<P>) };
            let value = next_node.value.load(h, D::CRITICAL_LOAD);
            if self
                .roots()
                .head
                .compare_exchange(h, head, next, D::STORE)
                .is_ok()
            {
                // Linearization point: `next` is the new sentinel, the old one is
                // unreachable for new operations.
                self.retire(&guard, head as *mut Node<P>);
                h.operation_completion();
                return Some(value);
            }
        }
    }

    fn len_impl(&self) -> usize {
        // Quiescent-state traversal: counts nodes after the sentinel.
        let mut count = 0;
        let mut cur = unsafe { &*(self.roots().head.load_direct() as *const Node<P>) }
            .next
            .load_direct();
        while cur != 0 {
            count += 1;
            cur = unsafe { &*(cur as *const Node<P>) }.next.load_direct();
        }
        count
    }

    /// The queue contents in FIFO order, read from volatile memory. Quiescent states
    /// only; used by tests to compare against [`recover`](Self::recover).
    pub fn volatile_contents(&self) -> Vec<u64> {
        let mut values = Vec::new();
        let mut cur = unsafe { &*(self.roots().head.load_direct() as *const Node<P>) }
            .next
            .load_direct();
        while cur != 0 {
            let node = unsafe { &*(cur as *const Node<P>) };
            values.push(node.value.load_direct());
            cur = node.next.load_direct();
        }
        values
    }

    /// Reconstruct the durable queue **purely from the crash image and the
    /// arena's root table**: find the root-pointer slot through
    /// [`roots::QUEUE_ROOTS`], read the persisted `head` word, then walk persisted
    /// `next` links collecting persisted value words, stopping at the first link
    /// the image does not contain (the end of the persisted prefix). No live
    /// memory is touched. An absent root means the queue was not durably
    /// constructed at the crash point: empty queue.
    pub fn recover_in_image(arena: &Arena, image: &CrashImage) -> RecoveredQueue {
        let mut values = Vec::new();
        let Some(roots_slot) = arena.root_in_image(image, roots::QUEUE_ROOTS) else {
            return RecoveredQueue {
                values,
                truncated: false,
            };
        };
        let node_layout = Node::<P>::layout();
        let roots_layout = Roots::<P>::layout();
        let Some(head) = image.read(roots_slot + roots_layout.head) else {
            // The roots slot is persisted before its registration; a registered
            // root without a head word is an inconsistent image.
            return RecoveredQueue {
                values,
                truncated: true,
            };
        };
        // Corrupt images (the broken control's) can contain pointer loops; bound
        // the walk by the image size so recovery always terminates.
        let mut budget = image.len() + 2;
        let mut cur = head as usize;
        loop {
            if budget == 0 || !arena.contains(cur) {
                return RecoveredQueue {
                    values,
                    truncated: true,
                };
            }
            budget -= 1;
            let next = match image.read(cur + node_layout.next) {
                // Link never persisted (or persisted as null): the persisted prefix
                // ends here.
                None | Some(0) => {
                    return RecoveredQueue {
                        values,
                        truncated: false,
                    }
                }
                Some(ptr) => ptr as usize,
            };
            if !arena.contains(next) {
                return RecoveredQueue {
                    values,
                    truncated: true,
                };
            }
            match image.read(next + node_layout.value) {
                Some(v) => values.push(v),
                None => {
                    // Reachable through a persisted link but value not persisted:
                    // the persist-before-publish invariant was violated.
                    return RecoveredQueue {
                        values,
                        truncated: true,
                    };
                }
            }
            cur = next;
        }
    }

    /// Image-only recovery through this queue's own arena; see
    /// [`recover_in_image`](Self::recover_in_image).
    pub fn recover(&self, image: &CrashImage) -> RecoveredQueue {
        Self::recover_in_image(&self.arena, image)
    }
}

impl<P: Policy, D: Durability> ConcurrentQueue<P> for MsQueue<P, D> {
    const NAME: &'static str = "msqueue";

    fn in_db(db: &FlitDb<P>) -> Self {
        Self::new(db)
    }

    fn enqueue(&self, h: &FlitHandle<'_, P>, value: u64) {
        self.enqueue_impl(h, value)
    }

    fn dequeue(&self, h: &FlitHandle<'_, P>) -> Option<u64> {
        self.dequeue_impl(h)
    }

    fn len(&self) -> usize {
        self.len_impl()
    }

    fn db(&self) -> &FlitDb<P> {
        &self.db
    }
}

// No `Drop` impl: nodes and the roots slot are plain data in arena slots,
// reclaimed wholesale when the last `Arc<Arena>` (and the collector, whose
// deferred recycles hold clones of it) goes away.

#[cfg(test)]
mod tests {
    use super::*;
    use flit::{FlitPolicy, HashedScheme, PlainPolicy};
    use flit_datastructs::{Automatic, Manual, NvTraverse};
    use flit_pmem::{LatencyModel, SimNvram};
    use std::sync::Arc;

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    fn ht_db() -> FlitDb<FlitPolicy<HashedScheme, SimNvram>> {
        FlitDb::flit_ht(backend())
    }

    type HtQueue<D> = MsQueue<FlitPolicy<HashedScheme, SimNvram>, D>;

    #[test]
    fn empty_queue_behaviour() {
        let db = ht_db();
        let h = db.handle();
        let q: HtQueue<Automatic> = MsQueue::new(&db);
        assert!(q.is_empty());
        assert_eq!(q.dequeue(&h), None);
        assert_eq!(q.len(), 0);
        assert!(q.volatile_contents().is_empty());
    }

    #[test]
    fn fifo_round_trip() {
        let db = ht_db();
        let h = db.handle();
        let q: HtQueue<Automatic> = MsQueue::new(&db);
        for v in 10..20u64 {
            q.enqueue(&h, v);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.volatile_contents(), (10..20).collect::<Vec<_>>());
        for v in 10..20u64 {
            assert_eq!(q.dequeue(&h), Some(v));
        }
        assert_eq!(q.dequeue(&h), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let db = ht_db();
        let h = db.handle();
        let q: HtQueue<Automatic> = MsQueue::new(&db);
        q.enqueue(&h, 1);
        q.enqueue(&h, 2);
        assert_eq!(q.dequeue(&h), Some(1));
        q.enqueue(&h, 3);
        assert_eq!(q.dequeue(&h), Some(2));
        assert_eq!(q.dequeue(&h), Some(3));
        assert_eq!(q.dequeue(&h), None);
        q.enqueue(&h, 4);
        assert_eq!(q.dequeue(&h), Some(4));
    }

    #[test]
    fn works_with_every_durability_method() {
        fn exercise<D: Durability>() {
            let db = FlitDb::flit_ht(SimNvram::builder().latency(LatencyModel::none()).build());
            let h = db.handle();
            let q: HtQueue<D> = MsQueue::new(&db);
            for v in 0..100u64 {
                q.enqueue(&h, v);
            }
            for v in 0..50u64 {
                assert_eq!(q.dequeue(&h), Some(v));
            }
            assert_eq!(q.len(), 50);
        }
        exercise::<Automatic>();
        exercise::<NvTraverse>();
        exercise::<Manual>();
    }

    #[test]
    fn works_with_every_policy() {
        fn exercise<P: Policy>(db: FlitDb<P>) {
            let h = db.handle();
            let q: MsQueue<P, Automatic> = MsQueue::new(&db);
            q.enqueue(&h, 7);
            q.enqueue(&h, 8);
            assert_eq!(q.dequeue(&h), Some(7));
            assert_eq!(q.len(), 1);
            assert_eq!(q.dequeue(&h), Some(8));
            assert_eq!(q.dequeue(&h), None);
        }
        exercise(FlitDb::plain(backend()));
        exercise(FlitDb::flit_adjacent(backend()));
        exercise(FlitDb::flit_ht(backend()));
        exercise(FlitDb::flit_cacheline(backend()));
        exercise(FlitDb::link_and_persist(backend()));
        exercise(FlitDb::no_persist());
    }

    #[test]
    fn dequeue_of_empty_flushes_under_plain_but_not_flit() {
        // The queue-shaped version of the paper's read-elision headline: a dequeue of
        // an empty queue is read-only, so FliT pays no pwbs while the plain
        // transformation pays one per p-load.
        let plain_sim = backend();
        let plain_db: FlitDb<PlainPolicy<SimNvram>> = FlitDb::plain(plain_sim.clone());
        let hp = plain_db.handle();
        let plain: MsQueue<PlainPolicy<SimNvram>, Automatic> = MsQueue::new(&plain_db);
        let flit_sim = backend();
        let flit_db = FlitDb::flit_ht(flit_sim.clone());
        let hf = flit_db.handle();
        let flit: HtQueue<Automatic> = MsQueue::new(&flit_db);

        let plain_before = plain_sim.stats().snapshot();
        let flit_before = flit_sim.stats().snapshot();
        for _ in 0..100 {
            assert_eq!(plain.dequeue(&hp), None);
            assert_eq!(flit.dequeue(&hf), None);
        }
        let plain_delta = plain_sim.stats().snapshot().delta_since(&plain_before);
        let flit_delta = flit_sim.stats().snapshot().delta_since(&flit_before);

        assert_eq!(flit_delta.pwbs, 0, "FliT must elide all read-side flushes");
        assert!(
            plain_delta.pwbs >= 300,
            "plain pays a pwb per p-load (3 per empty dequeue), got {}",
            plain_delta.pwbs
        );
        // With persist-epoch elision (the default), the handle stays clean through
        // a read-only dequeue of untagged words, so even the completion fence goes:
        // an empty dequeue costs zero persistence instructions under FliT.
        assert_eq!(
            flit_delta.pfences, 0,
            "completion fences of clean read-only ops are elided"
        );
        assert_eq!(flit_delta.elided_pfences, 100, "one elided fence per op");
    }

    #[test]
    fn dequeue_of_empty_pays_completion_fences_in_literal_mode() {
        use flit_pmem::ElisionMode;
        let sim = SimNvram::builder()
            .latency(flit_pmem::LatencyModel::none())
            .elision(ElisionMode::Disabled)
            .build();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let flit: HtQueue<Automatic> = MsQueue::new(&db);
        let before = sim.stats().snapshot();
        for _ in 0..100 {
            assert_eq!(flit.dequeue(&h), None);
        }
        let delta = sim.stats().snapshot().delta_since(&before);
        assert_eq!(
            delta.pfences, 100,
            "paper-literal: one completion fence per operation"
        );
    }

    #[test]
    fn mpmc_stress_conserves_values() {
        const PRODUCERS: u64 = 3;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: u64 = 2_000;
        let db = ht_db();
        let q: Arc<HtQueue<Automatic>> = Arc::new(MsQueue::new(&db));
        let popped = std::sync::Mutex::new(Vec::new());

        std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let q = Arc::clone(&q);
                let db = &db;
                s.spawn(move || {
                    let h = db.handle();
                    for i in 0..PER_PRODUCER {
                        q.enqueue(&h, (t << 32) | i);
                    }
                });
            }
            for _ in 0..CONSUMERS {
                let q = Arc::clone(&q);
                let popped = &popped;
                let db = &db;
                s.spawn(move || {
                    let h = db.handle();
                    let mut local = Vec::new();
                    let mut misses = 0u32;
                    // Keep consuming until producers are clearly done and the queue
                    // stays empty.
                    while misses < 1_000 {
                        match q.dequeue(&h) {
                            Some(v) => {
                                local.push(v);
                                misses = 0;
                            }
                            None => {
                                misses += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    popped.lock().unwrap().extend(local);
                });
            }
        });

        let h = db.handle();
        let mut drained = popped.into_inner().unwrap();
        while let Some(v) = q.dequeue(&h) {
            drained.push(v);
        }
        assert_eq!(drained.len() as u64, PRODUCERS * PER_PRODUCER);

        // Every value appears exactly once, and each producer's values are popped in
        // FIFO order relative to each other.
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len() as u64, PRODUCERS * PER_PRODUCER);
        for t in 0..PRODUCERS {
            let seqs: Vec<u64> = drained
                .iter()
                .filter(|v| (*v >> 32) == t)
                .map(|v| v & 0xFFFF_FFFF)
                .collect();
            // NOTE: `drained` concatenates per-consumer pops, so global order is not
            // FIFO; but the multiset must be complete. FIFO order per producer is
            // checked in the single-consumer test below.
            assert_eq!(seqs.len() as u64, PER_PRODUCER);
        }
    }

    #[test]
    fn single_consumer_sees_each_producer_in_order() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 1_000;
        let db = ht_db();
        let q: Arc<HtQueue<Manual>> = Arc::new(MsQueue::new(&db));
        let mut popped = Vec::new();

        std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let q = Arc::clone(&q);
                let db = &db;
                s.spawn(move || {
                    let h = db.handle();
                    for i in 0..PER_PRODUCER {
                        q.enqueue(&h, (t << 32) | i);
                    }
                });
            }
            let h = db.handle();
            let total = (PRODUCERS * PER_PRODUCER) as usize;
            while popped.len() < total {
                if let Some(v) = q.dequeue(&h) {
                    popped.push(v);
                } else {
                    std::thread::yield_now();
                }
            }
        });

        for t in 0..PRODUCERS {
            let seqs: Vec<u64> = popped
                .iter()
                .filter(|v| (*v >> 32) == t)
                .map(|v| v & 0xFFFF_FFFF)
                .collect();
            assert_eq!(seqs, (0..PER_PRODUCER).collect::<Vec<_>>(), "producer {t}");
        }
    }

    #[test]
    fn crash_image_recovers_the_exact_queue_when_quiescent() {
        let nvram = SimNvram::for_crash_testing();
        let db = FlitDb::flit_ht(nvram.clone());
        let h = db.handle();
        let q: HtQueue<Automatic> = MsQueue::new(&db);
        let _guard = h.pin();
        for v in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            q.enqueue(&h, v);
        }
        assert_eq!(q.dequeue(&h), Some(3));
        assert_eq!(q.dequeue(&h), Some(1));

        let image = nvram.tracker().unwrap().crash_image();
        let recovered = q.recover(&image);
        assert!(!recovered.truncated);
        assert_eq!(recovered.values, vec![4, 1, 5, 9, 2, 6]);
        assert_eq!(recovered.values, q.volatile_contents());
    }

    #[test]
    fn manual_variant_recovers_despite_volatile_tail() {
        // Manual leaves the tail swings volatile (INDEX_STORE); the persisted next
        // chain alone must still recover every completed enqueue.
        let nvram = SimNvram::for_crash_testing();
        let db = FlitDb::flit_ht(nvram.clone());
        let h = db.handle();
        let q: HtQueue<Manual> = MsQueue::new(&db);
        let _guard = h.pin();
        for v in 100..150u64 {
            q.enqueue(&h, v);
        }
        let image = nvram.tracker().unwrap().crash_image();
        let recovered = q.recover(&image);
        assert!(!recovered.truncated);
        assert_eq!(recovered.values, (100..150).collect::<Vec<_>>());
        // The tail root may well be stale in the image — that is the point of
        // treating it as index state. Head must be present.
        assert!(image.read(q.head_addr()).is_some());
    }
}
