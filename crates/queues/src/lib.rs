//! # `flit-queues` — durable lock-free FIFO queues
//!
//! The FliT paper evaluates its P-V interface on set/map structures; this crate opens
//! the second canonical NVM workload family, producer/consumer FIFO traffic
//! ("Highly-Efficient Persistent FIFO Queues", Fatourou et al.; the durable queue of
//! Friedman et al., PPoPP 2018). Like the map crate, everything is generic over two
//! type parameters:
//!
//! * `P:` [`flit::Policy`] — *how* p-instructions are implemented (plain,
//!   flit-adjacent, flit-HT, flit-cacheline, link-and-persist, or the non-persistent
//!   baseline);
//! * `D:` [`Durability`] — *which* instructions are
//!   p-instructions. [`Automatic`] (every instruction,
//!   Theorem 3.1) and [`Manual`] (only the
//!   linearization-point stores) are the two variants the queue harness exercises.
//!
//! | structure | module | paper reference |
//! |---|---|---|
//! | Michael–Scott queue | [`ms_queue`] | Michael & Scott, PODC'96 |
//!
//! [`ConcurrentQueue`] mirrors [`flit_datastructs::ConcurrentMap`] as the interface
//! the workload generator and benchmark harness drive; [`SequentialQueue`] is the
//! reference model for the property-based tests; [`RecoveredQueue`] is what
//! [`MsQueue::recover`] reconstructs from an adversarial
//! [`CrashImage`](flit_pmem::CrashImage).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ms_queue;
pub mod queue;

pub use ms_queue::{MsQueue, RecoveredQueue};
pub use queue::{ConcurrentQueue, SequentialQueue};

// Re-export the durability methods so queue users need not depend on the map crate
// for the `D` parameter.
pub use flit_datastructs::{Automatic, Durability, Manual, NvTraverse};

#[cfg(test)]
mod proptests {
    //! Property-based tests: the queue, under every durability method, agrees with
    //! the [`SequentialQueue`] reference model on arbitrary operation sequences.

    use super::*;
    use flit::{FlitDb, FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Enqueue(u64),
        Dequeue,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Enqueues slightly outnumber dequeues so runs exercise both non-empty and
        // drained-empty states.
        prop_oneof![
            (0u64..1000).prop_map(Op::Enqueue),
            (0u64..1000).prop_map(Op::Enqueue),
            (0u64..1).prop_map(|_| Op::Dequeue),
        ]
    }

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    fn check_against_model<D: Durability>(ops: &[Op]) {
        let db = FlitDb::flit_ht(backend());
        let h = db.handle();
        let q: MsQueue<FlitPolicy<HashedScheme, SimNvram>, D> = MsQueue::new(&db);
        let model = SequentialQueue::new();
        for op in ops {
            match *op {
                Op::Enqueue(v) => {
                    q.enqueue(&h, v);
                    model.enqueue(v);
                }
                Op::Dequeue => assert_eq!(q.dequeue(&h), model.dequeue()),
            }
        }
        assert_eq!(q.len(), model.len());
        assert_eq!(q.volatile_contents(), model.snapshot());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn msqueue_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            check_against_model::<Automatic>(&ops);
            check_against_model::<NvTraverse>(&ops);
            check_against_model::<Manual>(&ops);
        }
    }
}
