//! Observability for the FliT suite: metrics, latency histograms, and a
//! persistence flight recorder.
//!
//! The FliT paper's claims are quantitative — pwbs and pfences per operation,
//! and the throughput they cost — so the reproduction needs a way to *see*
//! those numbers outside of ad-hoc bench scrapes. This crate is the shared
//! bottom layer every other crate can afford to depend on: it has no
//! dependency on the persistence stack itself, only on `std` atomics (plus
//! `CachePadded` from the vendored `crossbeam-utils` shim), so `flit-pmem`,
//! `flit-core`, `flit-server`, and the bench/crashtest harnesses all meet at
//! the same types.
//!
//! Three pieces, three cost models:
//!
//! * [`Registry`] — a label-aware counter/gauge/histogram registry.
//!   Registration (cold) takes a mutex; recording (hot) is one relaxed atomic
//!   increment on a cache-padded shard private to the recording handle.
//!   Aggregation happens only at [`Registry::snapshot`] time, which sums the
//!   shards — the inverse of a push-based metrics pipeline, and the reason
//!   instrumented code stays within the ≤2% overhead budget. Components that
//!   already keep their own counters (e.g. `PmemStats` in `flit-pmem`) are
//!   *pulled* into gauges at snapshot time rather than double-counted on the
//!   hot path.
//! * [`LatencyHistogram`] — the log₂×linear fixed-bucket histogram that
//!   previously lived in `flit-bench`; moved here so server, bench, and obs
//!   share one histogram type. Recording is one relaxed increment; quantiles
//!   are pessimistic bucket upper bounds with ≤6.25% relative error.
//! * [`FlightRecorder`] — a fixed-size ring of the most recent persistence
//!   events (store/pwb/pfence and their elided variants, with the affected
//!   word and store-version stamp). It exists for post-mortems: a crashtest
//!   violation that only says "prefix mismatch at event 4 712" is a puzzle,
//!   while the same violation with the last 64 persistence events attached is
//!   a diagnosis. The whole type is behind the `recorder` cargo feature and
//!   collapses to a zero-sized no-op when the feature is off, so production
//!   builds carry no ring allocations at all.
//!
//! Snapshots serialize to a small hand-rolled JSON document with schema tag
//! [`SCHEMA`] (`"flit-obs-v1"`); the suite deliberately avoids serde to keep
//! the vendored dependency set minimal.

#![warn(missing_docs)]

mod flight;
mod hist;
mod registry;

pub use flight::{FlightEvent, FlightEventKind, FlightRecorder, FlightSink, FLIGHT_CAPACITY};
pub use hist::LatencyHistogram;
pub use registry::{
    Counter, CounterShard, Gauge, Histogram, HistogramSample, MetricSample, MetricsSnapshot,
    Registry, SCHEMA,
};
