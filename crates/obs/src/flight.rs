//! The persistence flight recorder: a fixed-size ring of recent events.
//!
//! When a crash sweep reports a violation, the repro string replays the
//! failure but does not *explain* it — what you want is the tail of the
//! persistence event stream right before the crash point: which words were
//! stored, which were flushed, which flushes the elision machinery skipped
//! and under what store-version stamp. The recorder captures exactly that:
//! each handle's `PersistEpoch` owns one [`FlightRecorder`] and every
//! `PmemSession` call appends a `(kind, word, store_version)` triple tagged
//! with a monotone event index. The ring keeps the last [`FLIGHT_CAPACITY`]
//! events (64 — comfortably above the ≥32 a violation report embeds).
//!
//! The entire mechanism sits behind the `recorder` cargo feature. With the
//! feature off, [`FlightRecorder`] is a zero-sized type whose `record` is an
//! empty inline function: no ring allocation, no atomics, no branch — the
//! hot path of a production build is bit-identical to one that never heard
//! of flight recording. Callers can consult [`FlightRecorder::ENABLED`]
//! (mirrors the feature flag) to skip computing event arguments entirely.
//!
//! With the feature on, rings still start **dormant**: cargo unifies the
//! feature across a workspace build (the crash harness pulls it in), so a
//! compiled-in ring must not tax benchmark binaries. `record` early-returns
//! on a relaxed flag until [`FlightRecorder::arm`] is called — one predictable
//! branch per event — and arming is one-way, shared by every clone.
//!
//! With the feature on, the ring is shared (`Arc`) so a `FlitDb` can
//! snapshot every registered handle's recorder from another thread while
//! the handles keep writing. Writers publish a slot by storing its fields
//! and then its index; the snapshot re-checks each slot's index and drops
//! entries caught mid-overwrite, so a torn slot is skipped rather than
//! misreported.

/// Number of events the ring retains (per handle).
pub const FLIGHT_CAPACITY: usize = 64;

/// What kind of persistence event a ring entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A recorded store to a tracked word.
    Store,
    /// An explicit write-back (`pwb`) issued to the backend.
    Pwb,
    /// An ordering fence (`pfence`) issued to the backend.
    Pfence,
    /// A `pwb_dedup` call that proved the flush redundant and skipped it.
    ElidedPwb,
    /// A `pfence_if_dirty` call on a clean epoch that skipped the fence.
    ElidedPfence,
}

impl FlightEventKind {
    /// Stable lowercase name, used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::Store => "store",
            FlightEventKind::Pwb => "pwb",
            FlightEventKind::Pfence => "pfence",
            FlightEventKind::ElidedPwb => "elided_pwb",
            FlightEventKind::ElidedPfence => "elided_pfence",
        }
    }

    #[cfg(feature = "recorder")]
    fn as_u8(self) -> u8 {
        match self {
            FlightEventKind::Store => 0,
            FlightEventKind::Pwb => 1,
            FlightEventKind::Pfence => 2,
            FlightEventKind::ElidedPwb => 3,
            FlightEventKind::ElidedPfence => 4,
        }
    }

    #[cfg(feature = "recorder")]
    fn from_u8(v: u8) -> Self {
        match v {
            0 => FlightEventKind::Store,
            1 => FlightEventKind::Pwb,
            2 => FlightEventKind::Pfence,
            3 => FlightEventKind::ElidedPwb,
            _ => FlightEventKind::ElidedPfence,
        }
    }
}

/// One recorded persistence event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone per-recorder event index (0 is the first event ever).
    pub index: u64,
    /// Event kind.
    pub kind: FlightEventKind,
    /// The cache-line-aligned word the event concerns (0 for fences).
    pub word: usize,
    /// The backend store-version stamp when the event was recorded.
    pub store_version: u64,
}

impl FlightEvent {
    /// One-line JSON object for this event.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"index\":{},\"kind\":\"{}\",\"word\":{},\"store_version\":{}}}",
            self.index,
            self.kind.name(),
            self.word,
            self.store_version
        )
    }
}

/// The sink interface the persistence layer records into. Implemented by
/// [`FlightRecorder`] in both its real and no-op forms, so instrumented code
/// is written once against the trait and the feature flag picks the cost.
pub trait FlightSink {
    /// Append one event.
    fn record(&self, kind: FlightEventKind, word: usize, store_version: u64);
}

#[cfg(feature = "recorder")]
mod imp {
    use super::{FlightEvent, FlightEventKind, FlightSink, FLIGHT_CAPACITY};
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
    use std::sync::Arc;

    struct Ring {
        /// Runtime arming switch: rings start dormant so merely *compiling*
        /// the feature in (cargo unifies it across a workspace build through
        /// `flit-crashtest`) costs benchmarks one predictable branch per
        /// event, not ring traffic. The crash harness arms the handles it
        /// actually samples.
        armed: AtomicBool,
        /// Total events ever recorded; `total % FLIGHT_CAPACITY` is the next slot.
        total: AtomicU64,
        kinds: [AtomicU8; FLIGHT_CAPACITY],
        words: [AtomicU64; FLIGHT_CAPACITY],
        versions: [AtomicU64; FLIGHT_CAPACITY],
        /// The event index each slot currently holds; written last, checked on
        /// read so a snapshot drops slots caught mid-overwrite.
        indexes: [AtomicU64; FLIGHT_CAPACITY],
    }

    /// The real ring-buffer recorder (cargo feature `recorder` on).
    #[derive(Clone)]
    pub struct FlightRecorder {
        ring: Arc<Ring>,
    }

    impl Default for FlightRecorder {
        fn default() -> Self {
            Self::new()
        }
    }

    impl FlightRecorder {
        /// Mirrors the `recorder` cargo feature: `true` in this build.
        pub const ENABLED: bool = true;

        /// A fresh, empty ring.
        pub fn new() -> Self {
            FlightRecorder {
                ring: Arc::new(Ring {
                    armed: AtomicBool::new(false),
                    total: AtomicU64::new(0),
                    kinds: [(); FLIGHT_CAPACITY].map(|_| AtomicU8::new(0)),
                    words: [(); FLIGHT_CAPACITY].map(|_| AtomicU64::new(0)),
                    versions: [(); FLIGHT_CAPACITY].map(|_| AtomicU64::new(0)),
                    indexes: [(); FLIGHT_CAPACITY].map(|_| AtomicU64::new(u64::MAX)),
                }),
            }
        }

        /// Start recording. Rings are created dormant; arming is one-way and
        /// shared by every clone (the crash harness arms the sessions whose
        /// tails it samples, everyone else keeps the dormant-branch cost).
        pub fn arm(&self) {
            self.ring.armed.store(true, Ordering::Release);
        }

        /// `true` once [`arm`](Self::arm) has been called on any clone.
        pub fn is_armed(&self) -> bool {
            self.ring.armed.load(Ordering::Relaxed)
        }

        /// Events the ring retains: [`FLIGHT_CAPACITY`].
        pub fn capacity(&self) -> usize {
            FLIGHT_CAPACITY
        }

        /// Total events ever recorded (not just the retained tail).
        pub fn total_recorded(&self) -> u64 {
            self.ring.total.load(Ordering::Relaxed)
        }

        /// The retained tail of the event stream, oldest first. Slots being
        /// overwritten concurrently are skipped, not misreported.
        pub fn snapshot(&self) -> Vec<FlightEvent> {
            let total = self.ring.total.load(Ordering::Acquire);
            let first = total.saturating_sub(FLIGHT_CAPACITY as u64);
            let mut out = Vec::with_capacity((total - first) as usize);
            for index in first..total {
                let slot = (index % FLIGHT_CAPACITY as u64) as usize;
                let kind = self.ring.kinds[slot].load(Ordering::Acquire);
                let word = self.ring.words[slot].load(Ordering::Acquire);
                let version = self.ring.versions[slot].load(Ordering::Acquire);
                if self.ring.indexes[slot].load(Ordering::Acquire) != index {
                    continue;
                }
                out.push(FlightEvent {
                    index,
                    kind: FlightEventKind::from_u8(kind),
                    word: word as usize,
                    store_version: version,
                });
            }
            out
        }
    }

    impl FlightSink for FlightRecorder {
        #[inline]
        fn record(&self, kind: FlightEventKind, word: usize, store_version: u64) {
            if !self.is_armed() {
                return;
            }
            let index = self.ring.total.fetch_add(1, Ordering::AcqRel);
            let slot = (index % FLIGHT_CAPACITY as u64) as usize;
            self.ring.kinds[slot].store(kind.as_u8(), Ordering::Release);
            self.ring.words[slot].store(word as u64, Ordering::Release);
            self.ring.versions[slot].store(store_version, Ordering::Release);
            self.ring.indexes[slot].store(index, Ordering::Release);
        }
    }
}

#[cfg(not(feature = "recorder"))]
mod imp {
    use super::{FlightEvent, FlightEventKind, FlightSink};

    /// The no-op recorder (cargo feature `recorder` off): a zero-sized type
    /// whose methods compile to nothing. `size_of::<FlightRecorder>() == 0`
    /// is asserted by the zero-overhead guard test.
    #[derive(Clone, Copy, Default)]
    pub struct FlightRecorder;

    impl FlightRecorder {
        /// Mirrors the `recorder` cargo feature: `false` in this build.
        pub const ENABLED: bool = false;

        /// A no-op recorder.
        pub fn new() -> Self {
            FlightRecorder
        }

        /// No-op: there is no ring to arm.
        pub fn arm(&self) {}

        /// Always `false`: the no-op recorder never records.
        pub fn is_armed(&self) -> bool {
            false
        }

        /// Zero: nothing is retained.
        pub fn capacity(&self) -> usize {
            0
        }

        /// Zero: nothing is recorded.
        pub fn total_recorded(&self) -> u64 {
            0
        }

        /// Always empty.
        pub fn snapshot(&self) -> Vec<FlightEvent> {
            Vec::new()
        }
    }

    impl FlightSink for FlightRecorder {
        #[inline(always)]
        fn record(&self, _kind: FlightEventKind, _word: usize, _store_version: u64) {}
    }
}

pub use imp::FlightRecorder;

#[cfg(all(test, feature = "recorder"))]
mod tests {
    use super::*;

    #[test]
    fn dormant_ring_records_nothing() {
        let r = FlightRecorder::new();
        assert!(!r.is_armed(), "rings start dormant");
        r.record(FlightEventKind::Store, 64, 1);
        assert_eq!(r.total_recorded(), 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn arming_is_shared_by_clones() {
        let a = FlightRecorder::new();
        let b = a.clone();
        a.arm();
        assert!(b.is_armed(), "clones share the arming switch");
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let r = FlightRecorder::new();
        r.arm();
        r.record(FlightEventKind::Store, 64, 1);
        r.record(FlightEventKind::Pwb, 64, 2);
        r.record(FlightEventKind::Pfence, 0, 2);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].kind, FlightEventKind::Store);
        assert_eq!(snap[0].index, 0);
        assert_eq!(snap[2].kind, FlightEventKind::Pfence);
        assert_eq!(snap[2].store_version, 2);
    }

    #[test]
    fn ring_wraps_keeping_the_newest_tail() {
        let r = FlightRecorder::new();
        r.arm();
        let n = (FLIGHT_CAPACITY as u64) * 2 + 10;
        for i in 0..n {
            r.record(FlightEventKind::Pwb, i as usize * 8, i);
        }
        assert_eq!(r.total_recorded(), n);
        let snap = r.snapshot();
        assert_eq!(snap.len(), FLIGHT_CAPACITY);
        assert_eq!(snap[0].index, n - FLIGHT_CAPACITY as u64);
        assert_eq!(snap.last().unwrap().index, n - 1);
        // Oldest-first, contiguous indexes.
        for w in snap.windows(2) {
            assert_eq!(w[1].index, w[0].index + 1);
        }
    }

    #[test]
    fn clones_share_one_ring() {
        let a = FlightRecorder::new();
        let b = a.clone();
        a.arm();
        a.record(FlightEventKind::Store, 8, 1);
        b.record(FlightEventKind::Pwb, 8, 2);
        assert_eq!(a.snapshot().len(), 2);
        assert_eq!(b.total_recorded(), 2);
    }

    #[test]
    fn event_json_shape() {
        let e = FlightEvent {
            index: 41,
            kind: FlightEventKind::ElidedPwb,
            word: 128,
            store_version: 7,
        };
        assert_eq!(
            e.to_json(),
            "{\"index\":41,\"kind\":\"elided_pwb\",\"word\":128,\"store_version\":7}"
        );
    }
}

#[cfg(all(test, not(feature = "recorder")))]
mod zero_overhead_tests {
    use super::*;

    /// The zero-overhead guard: with the feature off the recorder must be a
    /// true ZST — no ring allocations anywhere. (Run via
    /// `cargo test -p flit-obs --no-default-features`; a workspace-wide build
    /// unifies the feature on through `flit-crashtest`.)
    #[test]
    fn recorder_off_means_no_ring() {
        assert_eq!(std::mem::size_of::<FlightRecorder>(), 0);
        // Pins the feature gate and the constant together (a plain assert!
        // trips clippy::assertions_on_constants in this cfg).
        assert_eq!(FlightRecorder::ENABLED, cfg!(feature = "recorder"));
        let r = FlightRecorder::new();
        r.arm();
        assert!(!r.is_armed(), "the no-op recorder cannot be armed");
        r.record(FlightEventKind::Store, 64, 1);
        assert_eq!(r.capacity(), 0);
        assert_eq!(r.total_recorded(), 0);
        assert!(r.snapshot().is_empty());
    }
}
