//! A lock-free, label-aware metrics registry.
//!
//! The design splits cost by temperature. The *cold* path — looking a metric
//! up by name and labels, or registering a new per-thread shard — takes a
//! plain mutex; it happens once per handle, not once per operation. The *hot*
//! path — [`CounterShard::add`], [`Gauge::set`], [`Histogram::record`] — is a
//! single relaxed atomic on memory the caller owns exclusively (counter
//! shards are `CachePadded`, so two handles never bounce a cache line).
//! Aggregation is deferred entirely to [`Registry::snapshot`], which sums the
//! shards under the registration lock. Counters are therefore monotone as
//! observed through snapshots, and the snapshot total always equals the sum
//! of the live shards — properties the integration tests pin down.
//!
//! Identity is `(name, labels)` after sorting labels by key, so
//! `counter("ops", &[("shard", "0")])` from two call sites returns the same
//! underlying metric. Snapshots serialize to JSON with schema [`SCHEMA`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam_utils::CachePadded;

use crate::hist::LatencyHistogram;

/// Schema tag carried by [`MetricsSnapshot::to_json`] documents.
pub const SCHEMA: &str = "flit-obs-v1";

/// Sorted `(key, value)` label pairs identifying one time series.
type Labels = Vec<(String, String)>;

fn make_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

/// Minimal JSON string escaping; metric names and labels are code-controlled,
/// but quoting mistakes must not corrupt the document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &Labels) -> String {
    let fields: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

struct CounterInner {
    name: String,
    labels: Labels,
    /// The handle-free "direct" cell serving [`Counter::add`] callers.
    direct: CachePadded<AtomicU64>,
    /// One padded cell per [`CounterShard`] handed out; summed on snapshot.
    shards: Mutex<Vec<Arc<CachePadded<AtomicU64>>>>,
}

impl CounterInner {
    fn value(&self) -> u64 {
        let shards = self.shards.lock().unwrap();
        self.direct.load(Ordering::Relaxed)
            + shards
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .sum::<u64>()
    }
}

/// A monotone counter. Cheap to clone; all clones observe the same series.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    /// Add `n` via the shared direct cell. Fine for cold or low-rate events
    /// (ticket waits, recovery phases); hot per-handle paths should take a
    /// private [`Counter::shard`] instead.
    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.direct.fetch_add(n, Ordering::Relaxed);
    }

    /// Register a new private shard of this counter. The shard's increments
    /// land on a cache line no other handle touches; the registry folds it
    /// back in at snapshot time.
    pub fn shard(&self) -> CounterShard {
        let cell = Arc::new(CachePadded::new(AtomicU64::new(0)));
        self.inner.shards.lock().unwrap().push(Arc::clone(&cell));
        CounterShard { cell }
    }

    /// Current aggregate value: direct cell plus every shard.
    pub fn value(&self) -> u64 {
        self.inner.value()
    }
}

/// A private shard of a [`Counter`]: one cache-padded cell owned by a single
/// handle. Because each shard has exactly one writer, the hot path is a
/// relaxed load + store pair (no interlocked read-modify-write); snapshots on
/// other threads read the cell atomically. Two threads writing one shard
/// would lose updates — take one shard per writer instead.
pub struct CounterShard {
    cell: Arc<CachePadded<AtomicU64>>,
}

impl CounterShard {
    /// Add `n` to this shard (single-writer: see the type docs).
    #[inline]
    pub fn add(&self, n: u64) {
        let v = self.cell.load(Ordering::Relaxed);
        self.cell.store(v + n, Ordering::Relaxed);
    }

    /// This shard's own contribution (not the counter aggregate).
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct GaugeInner {
    name: String,
    labels: Labels,
    value: AtomicU64,
}

/// A last-write-wins gauge. Snapshot-time instrumentation *pulls* values from
/// components that already keep their own counters (e.g. `PmemStats`) into
/// gauges, rather than double-counting on the hot path.
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.inner.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

struct HistInner {
    name: String,
    labels: Labels,
    hist: LatencyHistogram,
}

/// A registered [`LatencyHistogram`]. Recording is already thread-safe, so a
/// single histogram serves every worker of a run.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    /// Record one sample (nanoseconds by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.hist.record(v);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.hist.count()
    }

    /// The `q`-quantile; see [`LatencyHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.inner.hist.quantile(q)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<Vec<Arc<CounterInner>>>,
    gauges: Mutex<Vec<Arc<GaugeInner>>>,
    hists: Mutex<Vec<Arc<HistInner>>>,
}

/// The metric registry: get-or-create metrics by `(name, labels)`, snapshot
/// them all at once. Clones share the same underlying store.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `other` shares this registry's underlying store. Clones do;
    /// independently constructed registries never do. Lets aggregators (the
    /// KV server) tell "this component already writes into my registry" from
    /// "I must mirror its snapshot in".
    pub fn same_store(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Get or create the counter `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = make_labels(labels);
        let mut counters = self.inner.counters.lock().unwrap();
        if let Some(c) = counters
            .iter()
            .find(|c| c.name == name && c.labels == labels)
        {
            return Counter {
                inner: Arc::clone(c),
            };
        }
        let inner = Arc::new(CounterInner {
            name: name.to_string(),
            labels,
            direct: CachePadded::new(AtomicU64::new(0)),
            shards: Mutex::new(Vec::new()),
        });
        counters.push(Arc::clone(&inner));
        Counter { inner }
    }

    /// Get or create the gauge `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = make_labels(labels);
        let mut gauges = self.inner.gauges.lock().unwrap();
        if let Some(g) = gauges.iter().find(|g| g.name == name && g.labels == labels) {
            return Gauge {
                inner: Arc::clone(g),
            };
        }
        let inner = Arc::new(GaugeInner {
            name: name.to_string(),
            labels,
            value: AtomicU64::new(0),
        });
        gauges.push(Arc::clone(&inner));
        Gauge { inner }
    }

    /// Get or create the histogram `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let labels = make_labels(labels);
        let mut hists = self.inner.hists.lock().unwrap();
        if let Some(h) = hists.iter().find(|h| h.name == name && h.labels == labels) {
            return Histogram {
                inner: Arc::clone(h),
            };
        }
        let inner = Arc::new(HistInner {
            name: name.to_string(),
            labels,
            hist: LatencyHistogram::new(),
        });
        hists.push(Arc::clone(&inner));
        Histogram { inner }
    }

    /// Aggregate every registered metric into a point-in-time snapshot,
    /// sorted by `(name, labels)` for deterministic output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<MetricSample> = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|c| MetricSample {
                name: c.name.clone(),
                labels: c.labels.clone(),
                value: c.value(),
            })
            .collect();
        counters.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let mut gauges: Vec<MetricSample> = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|g| MetricSample {
                name: g.name.clone(),
                labels: g.labels.clone(),
                value: g.value.load(Ordering::Relaxed),
            })
            .collect();
        gauges.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let mut histograms: Vec<HistogramSample> = self
            .inner
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|h| HistogramSample {
                name: h.name.clone(),
                labels: h.labels.clone(),
                count: h.hist.count(),
                p50: h.hist.p50(),
                p99: h.hist.p99(),
                p999: h.hist.p999(),
            })
            .collect();
        histograms.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter or gauge sample in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Aggregated value at snapshot time.
    pub value: u64,
}

/// One histogram sample in a [`MetricsSnapshot`]: count plus tail quantiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Samples recorded.
    pub count: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// 99.9th percentile (bucket upper bound).
    pub p999: u64,
}

/// A point-in-time aggregation of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter samples, sorted by `(name, labels)`.
    pub counters: Vec<MetricSample>,
    /// Gauge samples, sorted by `(name, labels)`.
    pub gauges: Vec<MetricSample>,
    /// Histogram samples, sorted by `(name, labels)`.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Look up a counter or gauge value by name and labels (gauges searched
    /// after counters). Mostly a convenience for tests and `flitctl`.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let labels = make_labels(labels);
        self.counters
            .iter()
            .chain(self.gauges.iter())
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| s.value)
    }

    /// Serialize to a `flit-obs-v1` JSON document.
    pub fn to_json(&self) -> String {
        let samples = |v: &[MetricSample]| -> String {
            let rows: Vec<String> = v
                .iter()
                .map(|s| {
                    format!(
                        "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                        json_escape(&s.name),
                        json_labels(&s.labels),
                        s.value
                    )
                })
                .collect();
            format!("[{}]", rows.join(","))
        };
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                format!(
                    "{{\"name\":\"{}\",\"labels\":{},\"count\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
                    json_escape(&h.name),
                    json_labels(&h.labels),
                    h.count,
                    h.p50,
                    h.p99,
                    h.p999
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{}\",\"counters\":{},\"gauges\":{},\"histograms\":[{}]}}",
            SCHEMA,
            samples(&self.counters),
            samples(&self.gauges),
            hists.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_is_name_plus_sorted_labels() {
        let r = Registry::new();
        let a = r.counter("ops", &[("shard", "0"), ("op", "get")]);
        let b = r.counter("ops", &[("op", "get"), ("shard", "0")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5, "two lookups, one series");
        let other = r.counter("ops", &[("op", "put"), ("shard", "0")]);
        assert_eq!(other.value(), 0);
    }

    #[test]
    fn shards_fold_into_the_aggregate() {
        let r = Registry::new();
        let c = r.counter("drains", &[]);
        let s1 = c.shard();
        let s2 = c.shard();
        s1.add(10);
        s2.add(5);
        c.add(1);
        assert_eq!(s1.value(), 10);
        assert_eq!(c.value(), 16);
        let snap = r.snapshot();
        assert_eq!(snap.value("drains", &[]), Some(16));
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::new();
        let g = r.gauge("watermark", &[]);
        g.set(7);
        g.set(3);
        assert_eq!(g.value(), 3);
        assert_eq!(r.snapshot().value("watermark", &[]), Some(3));
    }

    #[test]
    fn snapshot_json_is_schema_tagged_and_sorted() {
        let r = Registry::new();
        r.counter("zeta", &[]).add(1);
        r.counter("alpha", &[("k", "v")]).add(2);
        r.gauge("g", &[]).set(9);
        r.histogram("lat", &[("shard", "1")]).record(100);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "alpha");
        assert_eq!(snap.counters[1].name, "zeta");
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"flit-obs-v1\""), "{json}");
        assert!(json.contains("\"name\":\"lat\""), "{json}");
        assert!(json.contains("\"labels\":{\"shard\":\"1\"}"), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
    }

    #[test]
    fn json_escaping_survives_hostile_labels() {
        let r = Registry::new();
        r.counter("c", &[("path", "a\"b\\c\nd")]).add(1);
        let json = r.snapshot().to_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"), "{json}");
    }
}
