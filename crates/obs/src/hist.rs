//! A fixed-bucket logarithmic latency histogram, dependency-free.
//!
//! The benchmark harness needs latency *distributions* — a p99 says what a mean
//! hides — but the container has no HDR-histogram crate, and per-sample `Vec`s
//! would distort the hot loop they measure. This is the standard compromise:
//! power-of-two major buckets subdivided linearly (`SUB_BITS` bits each), so
//! any `u64` nanosecond value lands in one of < 1024 buckets with a bounded
//! relative error of `2^-SUB_BITS` (6.25%). Recording is one atomic increment;
//! the recorder closure is `Sync`, so one histogram serves every worker thread
//! of a run (it is exactly the shape a `LatencyObserver` in `flit-workload`
//! wants).
//!
//! Quantiles are computed from a snapshot of the counts and report the
//! *upper bound* of the bucket holding the target rank — a pessimistic (never
//! flattering) tail estimate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket bits per power-of-two range: 16 sub-buckets, ≤6.25% error.
const SUB_BITS: u32 = 4;

/// Total bucket count: values below `2^SUB_BITS` map one-to-one, and each of
/// the remaining 60 octaves contributes `2^SUB_BITS` sub-buckets (976 in use).
const BUCKETS: usize = 1024;

/// The bucket index of value `v` (monotone in `v`).
fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1);
    (((msb - SUB_BITS + 1) << SUB_BITS) + sub as u32) as usize
}

/// The largest value mapping to bucket `idx` (inverse of [`bucket_index`]).
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < (1 << SUB_BITS) {
        return idx as u64;
    }
    let group = (idx >> SUB_BITS) as u32;
    let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
    let msb = group + SUB_BITS - 1;
    let lower = (1u64 << msb) + (sub << (msb - SUB_BITS));
    lower + ((1u64 << (msb - SUB_BITS)) - 1)
}

/// A concurrent log₂-bucketed histogram of `u64` samples (nanoseconds, by
/// convention). See the module docs for the bucketing scheme.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
        }
    }

    /// Record one sample. Thread-safe; one relaxed increment per call.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket holding
    /// that rank, from a snapshot of the counts; `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(idx);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Continuity at every power-of-two boundary, monotonicity throughout.
        let mut prev = bucket_index(0);
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "gap at {v}");
            prev = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn upper_bound_inverts_the_index() {
        for v in [0u64, 1, 15, 16, 17, 1000, 123_456, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            let ub = bucket_upper_bound(idx);
            assert!(ub >= v, "upper bound below the value at {v}");
            assert_eq!(bucket_index(ub), idx, "upper bound left its bucket at {v}");
            // The bound is tight: 6.25% relative error at most.
            assert!(ub - v <= v / 16 + 1, "loose bound at {v}: {ub}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in [3u64, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.p50(), 3);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.quantile(0.0), 3, "q=0 is the minimum's bucket");
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        // 99 samples near 100ns, one at ~1ms: p50 small, p99 huge.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let p50 = h.p50();
        assert!((100..=107).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((100..=107).contains(&p99), "p99 rank 99 of 100 = {p99}");
        let p999 = h.p999();
        assert!((1_000_000..=1_000_000 + 1_000_000 / 16 + 1).contains(&p999));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 100);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
