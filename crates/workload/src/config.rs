//! Workload configuration.

/// One benchmark workload, mirroring the parameters of the paper's evaluation setup
/// (§6.1): key range, update percentage (split 50/50 between inserts and deletes),
/// number of threads and per-thread operation count.
///
/// The paper runs each configuration for 5 wall-clock seconds; this reproduction uses
/// a fixed operation count instead, which is deterministic and behaves better on the
/// single-core container the experiments run in. Throughput is still reported as
/// operations per second.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Keys are drawn uniformly from `0..key_range`.
    pub key_range: u64,
    /// Percentage of operations that are updates (0, 5 and 50 in the paper); updates
    /// are split evenly between inserts and removes.
    pub update_percent: u32,
    /// Number of worker threads.
    pub threads: usize,
    /// Operations executed by each thread during the measured interval.
    pub ops_per_thread: u64,
    /// Number of keys inserted before measurement starts (the paper prefills each
    /// structure to half of its key range).
    pub prefill: u64,
    /// RNG seed; every thread derives its own stream from it.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A configuration with the paper's conventions: prefill to half the key range.
    pub fn new(key_range: u64, update_percent: u32, threads: usize, ops_per_thread: u64) -> Self {
        assert!(update_percent <= 100);
        assert!(threads > 0);
        assert!(key_range > 0);
        Self {
            key_range,
            update_percent,
            threads,
            ops_per_thread,
            prefill: key_range / 2,
            seed: 0xF117_5EED,
        }
    }

    /// Override the prefill size.
    pub fn with_prefill(mut self, prefill: u64) -> Self {
        self.prefill = prefill;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of measured operations across all threads.
    pub fn total_ops(&self) -> u64 {
        self.ops_per_thread * self.threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_defaults() {
        let c = WorkloadConfig::new(10_000, 5, 4, 1_000);
        assert_eq!(c.prefill, 5_000);
        assert_eq!(c.total_ops(), 4_000);
    }

    #[test]
    fn builders_override_fields() {
        let c = WorkloadConfig::new(100, 50, 2, 10)
            .with_prefill(7)
            .with_seed(42);
        assert_eq!(c.prefill, 7);
        assert_eq!(c.seed, 42);
    }

    #[test]
    #[should_panic]
    fn update_percent_must_be_a_percentage() {
        let _ = WorkloadConfig::new(100, 101, 1, 1);
    }
}
