//! The multi-threaded queue throughput runner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use flit::Policy;
use flit_pmem::StatsSnapshot;
use flit_queues::ConcurrentQueue;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::queue_config::{QueueShape, QueueWorkloadConfig};

/// The outcome of one measured queue workload run.
#[derive(Debug, Clone)]
pub struct QueueRunResult {
    /// Total operations executed across all threads.
    pub total_ops: u64,
    /// Wall-clock time of the measured interval.
    pub elapsed: Duration,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Persistence-instruction counts during the measured interval.
    pub pmem: StatsSnapshot,
    /// Enqueue operations executed.
    pub enqueues: u64,
    /// Dequeues that returned a value.
    pub dequeues_hit: u64,
    /// Dequeues that observed an empty queue.
    pub dequeues_empty: u64,
}

impl QueueRunResult {
    /// `pwb` instructions per operation.
    pub fn pwbs_per_op(&self) -> f64 {
        self.pmem.pwbs_per_op(self.total_ops)
    }

    /// `pfence` instructions per operation.
    pub fn pfences_per_op(&self) -> f64 {
        self.pmem.pfences_per_op(self.total_ops)
    }
}

/// Pre-fill `queue` with `cfg.prefill` values before the measured interval.
///
/// The tag keeps bit 63 clear so prefill values work with every policy, including
/// link-and-persist (which reserves the top bit as its dirty flag).
pub fn prefill_queue<P: Policy, Q: ConcurrentQueue<P>>(queue: &Q, cfg: &QueueWorkloadConfig) {
    let h = queue.db().handle();
    for i in 0..cfg.prefill {
        queue.enqueue(&h, 0x7EED_0000_0000_0000 | i);
    }
}

/// Values are tagged with the producing thread in the top 32 bits so correctness
/// checks can verify per-producer FIFO order.
#[inline]
fn tagged(tid: usize, seq: u64) -> u64 {
    ((tid as u64) << 32) | (seq & 0xFFFF_FFFF)
}

/// Run one queue workload configuration against `queue` and measure it.
///
/// Threads are spawned for the measured interval only; use [`prefill_queue`] first if
/// a warm queue is wanted. Dequeues of an empty queue count as operations (they are
/// real work — and the cheapest place to see FliT's read-side flush elision).
pub fn run_queue_workload<P: Policy, Q: ConcurrentQueue<P>>(
    queue: &Q,
    cfg: &QueueWorkloadConfig,
) -> QueueRunResult {
    run_queue_workload_observed(queue, cfg, None)
}

/// [`run_queue_workload`] with an optional per-operation
/// [`LatencyObserver`](crate::runner::LatencyObserver); mirrors
/// [`run_workload_observed`](crate::runner::run_workload_observed).
pub fn run_queue_workload_observed<P: Policy, Q: ConcurrentQueue<P>>(
    queue: &Q,
    cfg: &QueueWorkloadConfig,
    observe: Option<&crate::runner::LatencyObserver<'_>>,
) -> QueueRunResult {
    let before = queue.policy().stats_snapshot().unwrap_or_default();
    let enqueues = AtomicU64::new(0);
    let dequeues_hit = AtomicU64::new(0);
    let dequeues_empty = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..cfg.threads() {
            let enqueues = &enqueues;
            let dequeues_hit = &dequeues_hit;
            let dequeues_empty = &dequeues_empty;
            let queue = &queue;
            scope.spawn(move || {
                // One explicit session per worker thread: its persist epoch is what
                // the elision decisions of this thread's operations consult.
                let h = queue.db().handle();
                let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(tid as u64 * 0x9E37));
                let mut local_enq = 0u64;
                let mut local_hit = 0u64;
                let mut local_empty = 0u64;
                let mut seq = 0u64;

                match cfg.shape {
                    QueueShape::Mixed {
                        enqueue_percent, ..
                    } => {
                        let mut burst_left = 0u64;
                        let mut enqueueing = true;
                        for _ in 0..cfg.ops_per_thread {
                            if burst_left == 0 {
                                enqueueing = rng.gen_range(0..100u32) < enqueue_percent;
                                burst_left = cfg.burst;
                            }
                            burst_left -= 1;
                            let t0 = observe.map(|_| Instant::now());
                            if enqueueing {
                                queue.enqueue(&h, tagged(tid, seq));
                                seq += 1;
                                local_enq += 1;
                            } else if queue.dequeue(&h).is_some() {
                                local_hit += 1;
                            } else {
                                local_empty += 1;
                            }
                            if let (Some(obs), Some(t0)) = (observe, t0) {
                                obs(t0.elapsed().as_nanos() as u64);
                            }
                        }
                    }
                    QueueShape::ProducerConsumer { producers, .. } => {
                        let is_producer = tid < producers;
                        let mut burst_left = cfg.burst;
                        for _ in 0..cfg.ops_per_thread {
                            let t0 = observe.map(|_| Instant::now());
                            if is_producer {
                                queue.enqueue(&h, tagged(tid, seq));
                                seq += 1;
                                local_enq += 1;
                            } else if queue.dequeue(&h).is_some() {
                                local_hit += 1;
                            } else {
                                local_empty += 1;
                            }
                            if let (Some(obs), Some(t0)) = (observe, t0) {
                                obs(t0.elapsed().as_nanos() as u64);
                            }
                            // Bursty pacing: yield between bursts so the roles
                            // interleave rather than running in two solid phases.
                            burst_left -= 1;
                            if burst_left == 0 {
                                burst_left = cfg.burst;
                                std::thread::yield_now();
                            }
                        }
                    }
                }

                enqueues.fetch_add(local_enq, Ordering::Relaxed);
                dequeues_hit.fetch_add(local_hit, Ordering::Relaxed);
                dequeues_empty.fetch_add(local_empty, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();

    let after = queue.policy().stats_snapshot().unwrap_or_default();
    let total_ops = cfg.total_ops();
    QueueRunResult {
        total_ops,
        elapsed,
        mops: total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        pmem: after.delta_since(&before),
        enqueues: enqueues.into_inner(),
        dequeues_hit: dequeues_hit.into_inner(),
        dequeues_empty: dequeues_empty.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue_config::QueueWorkloadConfig;
    use flit::{FlitDb, FlitPolicy, HashedScheme};
    use flit_datastructs::Automatic;
    use flit_pmem::{LatencyModel, SimNvram};
    use flit_queues::MsQueue;

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    type Policy_ = FlitPolicy<HashedScheme, SimNvram>;
    type Queue_ = MsQueue<Policy_, Automatic>;

    #[test]
    fn prefill_reaches_the_requested_size() {
        let cfg = QueueWorkloadConfig::mixed(2, 50, 100).with_prefill(37);
        let q: Queue_ = MsQueue::new(&FlitDb::flit_ht(backend()));
        prefill_queue(&q, &cfg);
        assert_eq!(q.len() as u64, 37);
    }

    #[test]
    fn mixed_run_accounts_for_every_operation() {
        let cfg = QueueWorkloadConfig::mixed(3, 50, 1_000).with_burst(4);
        let q: Queue_ = MsQueue::new(&FlitDb::flit_ht(backend()));
        let r = run_queue_workload(&q, &cfg);
        assert_eq!(r.total_ops, 3_000);
        assert_eq!(r.enqueues + r.dequeues_hit + r.dequeues_empty, 3_000);
        // Conservation: whatever was enqueued is either dequeued or still queued.
        assert_eq!(r.enqueues, r.dequeues_hit + q.len() as u64);
        assert!(r.mops > 0.0);
        assert!(r.pmem.pwbs > 0, "updates must flush");
    }

    #[test]
    fn producer_consumer_roles_are_exclusive() {
        let cfg = QueueWorkloadConfig::producer_consumer(2, 2, 500).with_burst(16);
        let q: Queue_ = MsQueue::new(&FlitDb::flit_ht(backend()));
        let r = run_queue_workload(&q, &cfg);
        assert_eq!(r.total_ops, 2_000);
        assert_eq!(r.enqueues, 1_000, "producers only enqueue");
        assert_eq!(
            r.dequeues_hit + r.dequeues_empty,
            1_000,
            "consumers only dequeue"
        );
        assert_eq!(r.enqueues, r.dequeues_hit + q.len() as u64);
    }

    #[test]
    fn dequeue_only_workload_on_empty_queue_elides_all_flushes_with_flit() {
        // enqueue_percent 0, no prefill: every operation is a dequeue-of-empty.
        let cfg = QueueWorkloadConfig::mixed(2, 0, 500);
        let q: Queue_ = MsQueue::new(&FlitDb::flit_ht(backend()));
        let r = run_queue_workload(&q, &cfg);
        assert_eq!(r.dequeues_empty, 1_000);
        assert_eq!(r.pmem.pwbs, 0, "FliT pays no pwbs on read-only traffic");
        assert_eq!(
            r.pmem.pfences, 0,
            "clean completion fences are elided: read-only traffic is free"
        );
        assert_eq!(r.pmem.elided_pfences, 1_000, "one elided fence per op");
    }

    #[test]
    fn results_are_reproducible_with_one_thread() {
        let cfg = QueueWorkloadConfig::mixed(1, 60, 400)
            .with_seed(99)
            .with_burst(2);
        let run = || {
            let q: Queue_ = MsQueue::new(&FlitDb::flit_ht(backend()));
            let r = run_queue_workload(&q, &cfg);
            (r.enqueues, r.dequeues_hit, r.dequeues_empty)
        };
        assert_eq!(run(), run());
    }
}
