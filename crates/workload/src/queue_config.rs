//! Queue workload configuration.
//!
//! Producer/consumer traffic has a different shape from the map workloads of the
//! paper's evaluation: what matters is the *mix* of enqueues and dequeues, the
//! *ratio* of dedicated producer to consumer threads, and how *bursty* each thread's
//! operation stream is. [`QueueWorkloadConfig`] captures all three.

/// How the worker threads of a queue workload are organised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueShape {
    /// Every thread flips between enqueue and dequeue: each burst is an enqueue
    /// burst with probability `enqueue_percent`%, otherwise a dequeue burst.
    Mixed {
        /// Number of worker threads.
        threads: usize,
        /// Percentage of bursts that enqueue (50 = classic balanced mix).
        enqueue_percent: u32,
    },
    /// Dedicated producer threads (only enqueue) and consumer threads (only
    /// dequeue) — the shape of real serving pipelines.
    ProducerConsumer {
        /// Threads that only enqueue.
        producers: usize,
        /// Threads that only dequeue.
        consumers: usize,
    },
}

/// One queue benchmark workload.
///
/// Mirrors [`WorkloadConfig`](crate::WorkloadConfig) for queues: a fixed per-thread
/// operation count (deterministic, single-core friendly) with throughput still
/// reported as operations per second.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueWorkloadConfig {
    /// Thread organisation and operation mix.
    pub shape: QueueShape,
    /// Operations executed by each thread during the measured interval.
    pub ops_per_thread: u64,
    /// Burst length: consecutive operations of the same kind before the thread
    /// re-draws (Mixed) or yields (ProducerConsumer). 1 = no burstiness.
    pub burst: u64,
    /// Number of values enqueued before measurement starts.
    pub prefill: u64,
    /// RNG seed; every thread derives its own stream from it.
    pub seed: u64,
}

impl QueueWorkloadConfig {
    /// A balanced-mix configuration: `threads` workers, each flipping between
    /// enqueue and dequeue bursts with the given enqueue percentage.
    pub fn mixed(threads: usize, enqueue_percent: u32, ops_per_thread: u64) -> Self {
        assert!(threads > 0);
        assert!(enqueue_percent <= 100);
        Self {
            shape: QueueShape::Mixed {
                threads,
                enqueue_percent,
            },
            ops_per_thread,
            burst: 1,
            prefill: 0,
            seed: 0xF1F0_5EED,
        }
    }

    /// A producer/consumer configuration with dedicated thread roles.
    pub fn producer_consumer(producers: usize, consumers: usize, ops_per_thread: u64) -> Self {
        assert!(producers > 0);
        assert!(consumers > 0);
        Self {
            shape: QueueShape::ProducerConsumer {
                producers,
                consumers,
            },
            ops_per_thread,
            burst: 1,
            prefill: 0,
            seed: 0xF1F0_5EED,
        }
    }

    /// Override the burst length.
    pub fn with_burst(mut self, burst: u64) -> Self {
        assert!(burst > 0);
        self.burst = burst;
        self
    }

    /// Override the prefill size.
    pub fn with_prefill(mut self, prefill: u64) -> Self {
        self.prefill = prefill;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of worker threads.
    pub fn threads(&self) -> usize {
        match self.shape {
            QueueShape::Mixed { threads, .. } => threads,
            QueueShape::ProducerConsumer {
                producers,
                consumers,
            } => producers + consumers,
        }
    }

    /// Total number of measured operations across all threads.
    pub fn total_ops(&self) -> u64 {
        self.ops_per_thread * self.threads() as u64
    }

    /// Short label for benchmark output, e.g. `mixed-50%` or `pc-3:1`.
    pub fn shape_label(&self) -> String {
        match self.shape {
            QueueShape::Mixed {
                enqueue_percent, ..
            } => format!("mixed-{enqueue_percent}%"),
            QueueShape::ProducerConsumer {
                producers,
                consumers,
            } => format!("pc-{producers}:{consumers}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_constructor_and_builders() {
        let c = QueueWorkloadConfig::mixed(4, 50, 1_000)
            .with_burst(8)
            .with_prefill(64)
            .with_seed(7);
        assert_eq!(c.threads(), 4);
        assert_eq!(c.total_ops(), 4_000);
        assert_eq!(c.burst, 8);
        assert_eq!(c.prefill, 64);
        assert_eq!(c.seed, 7);
        assert_eq!(c.shape_label(), "mixed-50%");
    }

    #[test]
    fn producer_consumer_counts_both_roles() {
        let c = QueueWorkloadConfig::producer_consumer(3, 1, 500);
        assert_eq!(c.threads(), 4);
        assert_eq!(c.total_ops(), 2_000);
        assert_eq!(c.shape_label(), "pc-3:1");
    }

    #[test]
    #[should_panic]
    fn enqueue_percent_must_be_a_percentage() {
        let _ = QueueWorkloadConfig::mixed(1, 101, 1);
    }

    #[test]
    #[should_panic]
    fn burst_must_be_positive() {
        let _ = QueueWorkloadConfig::mixed(1, 50, 1).with_burst(0);
    }
}
