//! # `flit-workload` — workload generation and measurement harness
//!
//! This crate drives the data structures of [`flit_datastructs`] and the queues of
//! [`flit_queues`] with benchmark workloads, measuring operation throughput and the
//! persistence-instruction counts needed to reproduce the paper's figures.
//!
//! ## Map workloads (paper §6.1)
//!
//! A prefilled map, a uniform key distribution, and a mix of lookups and updates
//! (updates split 50/50 between inserts and deletes).
//!
//! * [`WorkloadConfig`] — key range, update ratio, thread count, operation count.
//! * [`run_workload`] — run one configuration against any [`ConcurrentMap`].
//!
//! ## Queue workloads
//!
//! Producer/consumer FIFO traffic — the shape of real serving pipelines — in two
//! flavours: a per-thread enqueue/dequeue mix, and dedicated producer:consumer
//! thread ratios, both with configurable burst lengths.
//!
//! * [`QueueWorkloadConfig`] / [`QueueShape`] — mix, ratio, bursts, prefill.
//! * [`run_queue_workload`] — run one configuration against any [`ConcurrentQueue`].
//!
//! ## Service request streams
//!
//! [`service`] generates the request streams of the sharded KV service
//! (`flit-server`): closed- and open-loop arrival ([`Arrival`]), mixed
//! read/write ratios and Zipfian key skew ([`KeySampler`]), all deterministic
//! per `(config, worker)`.
//!
//! ## Crash-test histories
//!
//! [`crash_history`] generates the deterministic single-threaded operation
//! sequences (scripted and seeded-random) that the `flit-crashtest` engine replays
//! once per crash point.
//!
//! ## Dispatch
//!
//! [`harness`] is a value-addressable dispatcher over every
//! (structure × durability method × policy) combination of the evaluation — maps via
//! [`run_case`] and queues via [`run_queue_case`] — used by the `repro` binary, the
//! Criterion benches and the examples.
//!
//! [`ConcurrentMap`]: flit_datastructs::ConcurrentMap
//! [`ConcurrentQueue`]: flit_queues::ConcurrentQueue

#![warn(missing_docs)]

pub mod config;
pub mod crash_history;
pub mod harness;
pub mod queue_config;
pub mod queue_runner;
pub mod runner;
pub mod service;

pub use config::WorkloadConfig;
pub use crash_history::{
    random_map_history, random_queue_history, scripted_map_history, scripted_queue_history, MapOp,
    QueueOp,
};
pub use harness::{
    run_case, run_case_observed, run_hamt_case, run_hamt_case_observed, run_queue_case,
    run_queue_case_observed, Case, DsKind, DurKind, HamtCase, PolicyKind, QueueCase, QUEUE_DURS,
};
pub use queue_config::{QueueShape, QueueWorkloadConfig};
pub use queue_runner::{
    prefill_queue, run_queue_workload, run_queue_workload_observed, QueueRunResult,
};
pub use runner::{run_workload, run_workload_observed, LatencyObserver, RunResult};
pub use service::{prefill_history, service_history, Arrival, KeySampler, ServiceConfig};
