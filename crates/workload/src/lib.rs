//! # `flit-workload` — workload generation and measurement harness
//!
//! This crate drives the data structures of [`flit_datastructs`] with the workloads of
//! the paper's evaluation (§6.1): a prefilled map, a uniform key distribution, and a
//! mix of lookups and updates (updates split 50/50 between inserts and deletes). It
//! measures operation throughput and the persistence-instruction counts needed to
//! reproduce every figure.
//!
//! * [`WorkloadConfig`] — key range, update ratio, thread count, operation count.
//! * [`run_workload`] — run one configuration against any [`ConcurrentMap`].
//! * [`harness`] — a string/enum-addressable dispatcher over every
//!   (data structure × durability method × policy) combination of the evaluation,
//!   used by the `repro` binary, the Criterion benches and the examples.

#![warn(missing_docs)]

pub mod config;
pub mod harness;
pub mod runner;

pub use config::WorkloadConfig;
pub use harness::{run_case, Case, DsKind, DurKind, PolicyKind};
pub use runner::{run_workload, RunResult};
