//! The experiment dispatcher: every (data structure × durability method × policy)
//! combination of the paper's evaluation, addressable by value so the `repro` binary
//! and the Criterion benches can enumerate them.
//!
//! Each call to [`run_case`] builds a fresh structure, prefills it, runs the
//! configured workload and returns the measured [`RunResult`]. The simulated-NVRAM
//! backend (and therefore the latency model and statistics) is created per case, so
//! cases never share counters.

use flit::{presets, FlitDb, Policy};
use flit_datastructs::{
    Automatic, ConcurrentMap, HarrisList, HashTable, Manual, NatarajanTree, NvTraverse, SkipList,
};
use flit_pmem::{CommitMode, ElisionMode, LatencyModel, SimNvram};
use flit_queues::{ConcurrentQueue, MsQueue};

use crate::config::WorkloadConfig;
use crate::queue_config::QueueWorkloadConfig;
use crate::queue_runner::{prefill_queue, run_queue_workload_observed, QueueRunResult};
use crate::runner::{prefill, run_workload_observed, LatencyObserver, RunResult};

/// Which data structure to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsKind {
    /// Harris linked list.
    List,
    /// Hash table with Harris-list buckets.
    HashTable,
    /// Natarajan–Mittal external BST.
    Bst,
    /// Lock-free skiplist.
    SkipList,
}

impl DsKind {
    /// All four structures, in the order of the paper's Figure 7.
    pub const ALL: [DsKind; 4] = [
        DsKind::Bst,
        DsKind::HashTable,
        DsKind::List,
        DsKind::SkipList,
    ];

    /// Display name matching the paper's plot captions.
    pub fn name(self) -> &'static str {
        match self {
            DsKind::List => "list",
            DsKind::HashTable => "hashtable",
            DsKind::Bst => "bst",
            DsKind::SkipList => "skiplist",
        }
    }
}

/// Which durability method to apply (paper §6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurKind {
    /// Every instruction is a p-instruction.
    Automatic,
    /// NVTraverse: volatile traversal + persisted transition/critical phase.
    NvTraverse,
    /// Hand-tuned placement.
    Manual,
}

impl DurKind {
    /// All three methods.
    pub const ALL: [DurKind; 3] = [DurKind::Automatic, DurKind::NvTraverse, DurKind::Manual];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DurKind::Automatic => "automatic",
            DurKind::NvTraverse => "nvtraverse",
            DurKind::Manual => "manual",
        }
    }
}

/// Which implementation of the P-V Interface to use (paper §6's compared variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Non-persistent baseline (grey dotted line).
    NoPersist,
    /// Durable transformation without read-side flush elision.
    Plain,
    /// FliT with the counter adjacent to every word.
    FlitAdjacent,
    /// FliT with a hashed counter table of the given size in bytes.
    FlitHt(usize),
    /// FliT with one counter per cache line (paper §8 future work).
    FlitCacheLine,
    /// The link-and-persist comparator (not applicable to the BST).
    LinkAndPersist,
}

impl PolicyKind {
    /// The variants shown in Figure 7 for a given structure (link-and-persist is shown
    /// only where applicable).
    pub fn figure7_set(ds: DsKind) -> Vec<PolicyKind> {
        let mut v = vec![
            PolicyKind::Plain,
            PolicyKind::FlitAdjacent,
            PolicyKind::FlitHt(1 << 20),
        ];
        if ds != DsKind::Bst {
            v.push(PolicyKind::LinkAndPersist);
        }
        v
    }

    /// Display name matching the paper's legends.
    pub fn name(self) -> String {
        match self {
            PolicyKind::NoPersist => "non-persistent".into(),
            PolicyKind::Plain => "plain".into(),
            PolicyKind::FlitAdjacent => "flit-adjacent".into(),
            PolicyKind::FlitHt(bytes) => format!("flit-HT ({})", flit::human_bytes(bytes)),
            PolicyKind::FlitCacheLine => "flit-cacheline".into(),
            PolicyKind::LinkAndPersist => "link-and-persist".into(),
        }
    }

    /// Whether this variant can be applied to the given structure (the paper cannot
    /// apply link-and-persist to the Natarajan–Mittal BST because it uses both low
    /// pointer bits and non-CAS updates).
    pub fn applicable_to(self, ds: DsKind) -> bool {
        !(self == PolicyKind::LinkAndPersist && ds == DsKind::Bst)
    }
}

/// One fully specified experiment case.
#[derive(Debug, Clone)]
pub struct Case {
    /// Data structure under test.
    pub ds: DsKind,
    /// Durability method.
    pub dur: DurKind,
    /// Persistence policy variant.
    pub policy: PolicyKind,
    /// Workload parameters.
    pub config: WorkloadConfig,
    /// Latency model for the simulated NVRAM.
    pub latency: LatencyModel,
    /// Persist-epoch elision mode of the simulated NVRAM
    /// ([`ElisionMode::Disabled`] measures the paper-literal instruction stream).
    pub elision: ElisionMode,
    /// Durability commit mode of the database ([`CommitMode::Batched`] amortises
    /// trailing fences across operations; the default is per-op durability).
    pub commit: CommitMode,
}

impl Case {
    /// Human-readable label, e.g. `bst/automatic/flit-HT (1MB)`. Batched commit
    /// modes append their name (`…/batched-8`); the immediate default keeps the
    /// historical three-part label.
    pub fn label(&self) -> String {
        let base = format!(
            "{}/{}/{}",
            self.ds.name(),
            self.dur.name(),
            self.policy.name()
        );
        if self.commit.is_batched() {
            format!("{}/{}", base, self.commit.name())
        } else {
            base
        }
    }
}

fn run_map<P, M>(db: &FlitDb<P>, case: &Case, observe: Option<&LatencyObserver<'_>>) -> RunResult
where
    P: Policy,
    M: ConcurrentMap<P>,
{
    let map = M::with_capacity(db, case.config.key_range as usize);
    prefill(&map, &case.config);
    run_workload_observed(&map, &case.config, observe)
}

fn run_with_policy<P: Policy>(
    policy: P,
    case: &Case,
    observe: Option<&LatencyObserver<'_>>,
) -> RunResult {
    let db = &FlitDb::builder(policy).commit_mode(case.commit).build();
    match (case.ds, case.dur) {
        (DsKind::List, DurKind::Automatic) => {
            run_map::<P, HarrisList<P, Automatic>>(db, case, observe)
        }
        (DsKind::List, DurKind::NvTraverse) => {
            run_map::<P, HarrisList<P, NvTraverse>>(db, case, observe)
        }
        (DsKind::List, DurKind::Manual) => run_map::<P, HarrisList<P, Manual>>(db, case, observe),
        (DsKind::HashTable, DurKind::Automatic) => {
            run_map::<P, HashTable<P, Automatic>>(db, case, observe)
        }
        (DsKind::HashTable, DurKind::NvTraverse) => {
            run_map::<P, HashTable<P, NvTraverse>>(db, case, observe)
        }
        (DsKind::HashTable, DurKind::Manual) => {
            run_map::<P, HashTable<P, Manual>>(db, case, observe)
        }
        (DsKind::Bst, DurKind::Automatic) => {
            run_map::<P, NatarajanTree<P, Automatic>>(db, case, observe)
        }
        (DsKind::Bst, DurKind::NvTraverse) => {
            run_map::<P, NatarajanTree<P, NvTraverse>>(db, case, observe)
        }
        (DsKind::Bst, DurKind::Manual) => run_map::<P, NatarajanTree<P, Manual>>(db, case, observe),
        (DsKind::SkipList, DurKind::Automatic) => {
            run_map::<P, SkipList<P, Automatic>>(db, case, observe)
        }
        (DsKind::SkipList, DurKind::NvTraverse) => {
            run_map::<P, SkipList<P, NvTraverse>>(db, case, observe)
        }
        (DsKind::SkipList, DurKind::Manual) => run_map::<P, SkipList<P, Manual>>(db, case, observe),
    }
}

/// Build the structure described by `case`, prefill it, run the workload and return
/// the measurement.
///
/// # Panics
/// Panics when the case combines link-and-persist with the BST (the combination the
/// paper also excludes); use [`PolicyKind::applicable_to`] to filter.
pub fn run_case(case: &Case) -> RunResult {
    run_case_observed(case, None)
}

/// [`run_case`] with an optional per-operation [`LatencyObserver`], so the
/// benchmark harness can collect latency distributions alongside throughput.
pub fn run_case_observed(case: &Case, observe: Option<&LatencyObserver<'_>>) -> RunResult {
    assert!(
        case.policy.applicable_to(case.ds),
        "{} cannot be applied to {}",
        case.policy.name(),
        case.ds.name()
    );
    let backend = || {
        SimNvram::builder()
            .latency(case.latency)
            .elision(case.elision)
            .build()
    };
    match case.policy {
        PolicyKind::NoPersist => run_with_policy(presets::no_persist(), case, observe),
        PolicyKind::Plain => run_with_policy(presets::plain(backend()), case, observe),
        PolicyKind::FlitAdjacent => {
            run_with_policy(presets::flit_adjacent(backend()), case, observe)
        }
        PolicyKind::FlitHt(bytes) => {
            run_with_policy(presets::flit_ht_sized(backend(), bytes), case, observe)
        }
        PolicyKind::FlitCacheLine => {
            run_with_policy(presets::flit_cacheline(backend()), case, observe)
        }
        PolicyKind::LinkAndPersist => {
            run_with_policy(presets::link_and_persist(backend()), case, observe)
        }
    }
}

/// One fully specified experiment case for the copy-on-write HAMT
/// (`flit-hamt`).
///
/// The HAMT brings its own durability discipline — persist the new path
/// bottom-up, publish with one flushed CAS (the MOD recipe) — so there is no
/// durability-method axis to sweep: the structure *is* its method. The policy
/// axis still applies (the P-V interface underneath is interchangeable), which
/// is exactly what makes the flat-fence-cost comparison against the in-place
/// structures meaningful.
#[derive(Debug, Clone)]
pub struct HamtCase {
    /// Persistence policy variant.
    pub policy: PolicyKind,
    /// Workload parameters.
    pub config: WorkloadConfig,
    /// Latency model for the simulated NVRAM.
    pub latency: LatencyModel,
    /// Persist-epoch elision mode of the simulated NVRAM.
    pub elision: ElisionMode,
    /// Durability commit mode of the database.
    pub commit: CommitMode,
}

impl HamtCase {
    /// Human-readable label, e.g. `hamt/cow/flit-HT (1MB)`; batched commit
    /// modes append their name. `cow` sits where the durability method sits in
    /// [`Case::label`], naming the structure's own discipline.
    pub fn label(&self) -> String {
        let base = format!("hamt/cow/{}", self.policy.name());
        if self.commit.is_batched() {
            format!("{}/{}", base, self.commit.name())
        } else {
            base
        }
    }
}

fn run_hamt_with_policy<P: Policy>(
    policy: P,
    case: &HamtCase,
    observe: Option<&LatencyObserver<'_>>,
) -> RunResult {
    let db = &FlitDb::builder(policy).commit_mode(case.commit).build();
    let map: flit_hamt::Hamt<P> = ConcurrentMap::with_capacity(db, case.config.key_range as usize);
    prefill(&map, &case.config);
    run_workload_observed(&map, &case.config, observe)
}

/// Build the HAMT described by `case`, prefill it, run the workload and return
/// the measurement. Every policy variant applies (the trie's interior is plain
/// `FlitHandle` traffic, word-aligned CAS only).
pub fn run_hamt_case(case: &HamtCase) -> RunResult {
    run_hamt_case_observed(case, None)
}

/// [`run_hamt_case`] with an optional per-operation [`LatencyObserver`].
pub fn run_hamt_case_observed(case: &HamtCase, observe: Option<&LatencyObserver<'_>>) -> RunResult {
    let backend = || {
        SimNvram::builder()
            .latency(case.latency)
            .elision(case.elision)
            .build()
    };
    match case.policy {
        PolicyKind::NoPersist => run_hamt_with_policy(presets::no_persist(), case, observe),
        PolicyKind::Plain => run_hamt_with_policy(presets::plain(backend()), case, observe),
        PolicyKind::FlitAdjacent => {
            run_hamt_with_policy(presets::flit_adjacent(backend()), case, observe)
        }
        PolicyKind::FlitHt(bytes) => {
            run_hamt_with_policy(presets::flit_ht_sized(backend(), bytes), case, observe)
        }
        PolicyKind::FlitCacheLine => {
            run_hamt_with_policy(presets::flit_cacheline(backend()), case, observe)
        }
        PolicyKind::LinkAndPersist => {
            run_hamt_with_policy(presets::link_and_persist(backend()), case, observe)
        }
    }
}

/// One fully specified queue experiment case.
///
/// The queue analogue of [`Case`]: the paper's P-V interface applies to any
/// linearizable structure, so the same policy variants are swept; the durability
/// methods exercised by the harness are `Automatic` and `Manual` (see
/// [`QUEUE_DURS`]), matching how hand-tuned durable queues place their persistence
/// in the literature.
#[derive(Debug, Clone)]
pub struct QueueCase {
    /// Durability method.
    pub dur: DurKind,
    /// Persistence policy variant.
    pub policy: PolicyKind,
    /// Workload parameters.
    pub config: QueueWorkloadConfig,
    /// Latency model for the simulated NVRAM.
    pub latency: LatencyModel,
    /// Persist-epoch elision mode of the simulated NVRAM.
    pub elision: ElisionMode,
    /// Durability commit mode of the database.
    pub commit: CommitMode,
}

/// The durability methods the queue harness sweeps. (NVTraverse instantiates too,
/// but the Michael–Scott queue has no traversal phase for it to optimise, so the
/// experiments report the two ends of the spectrum.)
pub const QUEUE_DURS: [DurKind; 2] = [DurKind::Automatic, DurKind::Manual];

impl QueueCase {
    /// Human-readable label, e.g. `msqueue/automatic/flit-HT (1MB)/mixed-50%`.
    /// Batched commit modes append their name; the immediate default keeps the
    /// historical four-part label.
    pub fn label(&self) -> String {
        let base = format!(
            "msqueue/{}/{}/{}",
            self.dur.name(),
            self.policy.name(),
            self.config.shape_label()
        );
        if self.commit.is_batched() {
            format!("{}/{}", base, self.commit.name())
        } else {
            base
        }
    }
}

fn run_queue<P, Q>(
    db: &FlitDb<P>,
    case: &QueueCase,
    observe: Option<&LatencyObserver<'_>>,
) -> QueueRunResult
where
    P: Policy,
    Q: ConcurrentQueue<P>,
{
    let queue = Q::in_db(db);
    prefill_queue(&queue, &case.config);
    run_queue_workload_observed(&queue, &case.config, observe)
}

fn run_queue_with_policy<P: Policy>(
    policy: P,
    case: &QueueCase,
    observe: Option<&LatencyObserver<'_>>,
) -> QueueRunResult {
    let db = &FlitDb::builder(policy).commit_mode(case.commit).build();
    match case.dur {
        DurKind::Automatic => run_queue::<P, MsQueue<P, Automatic>>(db, case, observe),
        DurKind::NvTraverse => run_queue::<P, MsQueue<P, NvTraverse>>(db, case, observe),
        DurKind::Manual => run_queue::<P, MsQueue<P, Manual>>(db, case, observe),
    }
}

/// Build the queue described by `case`, prefill it, run the workload and return the
/// measurement. Every policy variant applies to the queue (its updates are plain
/// CAS on word-aligned pointers, so even link-and-persist is usable).
pub fn run_queue_case(case: &QueueCase) -> QueueRunResult {
    run_queue_case_observed(case, None)
}

/// [`run_queue_case`] with an optional per-operation [`LatencyObserver`].
pub fn run_queue_case_observed(
    case: &QueueCase,
    observe: Option<&LatencyObserver<'_>>,
) -> QueueRunResult {
    let backend = || {
        SimNvram::builder()
            .latency(case.latency)
            .elision(case.elision)
            .build()
    };
    match case.policy {
        PolicyKind::NoPersist => run_queue_with_policy(presets::no_persist(), case, observe),
        PolicyKind::Plain => run_queue_with_policy(presets::plain(backend()), case, observe),
        PolicyKind::FlitAdjacent => {
            run_queue_with_policy(presets::flit_adjacent(backend()), case, observe)
        }
        PolicyKind::FlitHt(bytes) => {
            run_queue_with_policy(presets::flit_ht_sized(backend(), bytes), case, observe)
        }
        PolicyKind::FlitCacheLine => {
            run_queue_with_policy(presets::flit_cacheline(backend()), case, observe)
        }
        PolicyKind::LinkAndPersist => {
            run_queue_with_policy(presets::link_and_persist(backend()), case, observe)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> WorkloadConfig {
        WorkloadConfig::new(128, 20, 2, 200)
    }

    #[test]
    fn every_combination_runs() {
        for ds in DsKind::ALL {
            for dur in DurKind::ALL {
                for policy in [
                    PolicyKind::NoPersist,
                    PolicyKind::Plain,
                    PolicyKind::FlitAdjacent,
                    PolicyKind::FlitHt(1 << 16),
                    PolicyKind::FlitCacheLine,
                    PolicyKind::LinkAndPersist,
                ] {
                    if !policy.applicable_to(ds) {
                        continue;
                    }
                    let case = Case {
                        ds,
                        dur,
                        policy,
                        config: tiny_config(),
                        latency: LatencyModel::none(),
                        elision: ElisionMode::default(),
                        commit: CommitMode::Immediate,
                    };
                    let result = run_case(&case);
                    assert_eq!(result.total_ops, 400, "case {}", case.label());
                }
            }
        }
    }

    #[test]
    fn flit_beats_plain_on_pwbs() {
        // The core claim of the paper in miniature: for the same workload, flit-HT
        // executes far fewer pwbs than plain, because p-loads stop flushing.
        let mk = |policy| Case {
            ds: DsKind::Bst,
            dur: DurKind::Automatic,
            policy,
            config: WorkloadConfig::new(1_000, 5, 2, 2_000),
            latency: LatencyModel::none(),
            elision: ElisionMode::default(),
            commit: CommitMode::Immediate,
        };
        let plain = run_case(&mk(PolicyKind::Plain));
        let flit = run_case(&mk(PolicyKind::FlitHt(1 << 20)));
        assert!(
            plain.pwbs_per_op() > 5.0 * flit.pwbs_per_op(),
            "plain {} vs flit {}",
            plain.pwbs_per_op(),
            flit.pwbs_per_op()
        );
    }

    #[test]
    fn every_hamt_policy_runs() {
        for policy in [
            PolicyKind::NoPersist,
            PolicyKind::Plain,
            PolicyKind::FlitAdjacent,
            PolicyKind::FlitHt(1 << 16),
            PolicyKind::FlitCacheLine,
            PolicyKind::LinkAndPersist,
        ] {
            let case = HamtCase {
                policy,
                config: tiny_config(),
                latency: LatencyModel::none(),
                elision: ElisionMode::default(),
                commit: CommitMode::Immediate,
            };
            let result = run_hamt_case(&case);
            assert_eq!(result.total_ops, 400, "case {}", case.label());
        }
        let case = HamtCase {
            policy: PolicyKind::Plain,
            config: tiny_config(),
            latency: LatencyModel::none(),
            elision: ElisionMode::default(),
            commit: CommitMode::Batched(8),
        };
        assert_eq!(case.label(), "hamt/cow/plain/batched-8");
    }

    #[test]
    fn every_queue_combination_runs() {
        for dur in DurKind::ALL {
            for policy in [
                PolicyKind::NoPersist,
                PolicyKind::Plain,
                PolicyKind::FlitAdjacent,
                PolicyKind::FlitHt(1 << 16),
                PolicyKind::FlitCacheLine,
                PolicyKind::LinkAndPersist,
            ] {
                let case = QueueCase {
                    dur,
                    policy,
                    config: QueueWorkloadConfig::mixed(2, 50, 200).with_prefill(16),
                    latency: LatencyModel::none(),
                    elision: ElisionMode::default(),
                    commit: CommitMode::Immediate,
                };
                let result = run_queue_case(&case);
                assert_eq!(result.total_ops, 400, "case {}", case.label());
                assert_eq!(
                    result.enqueues + result.dequeues_hit + result.dequeues_empty,
                    400,
                    "case {}",
                    case.label()
                );
            }
        }
    }

    #[test]
    fn queue_flit_beats_plain_on_pwbs() {
        // The paper's claim carried over to the queue workload family: same traffic,
        // far fewer write-backs with FliT than with the plain transformation.
        let mk = |policy| QueueCase {
            dur: DurKind::Automatic,
            policy,
            config: QueueWorkloadConfig::producer_consumer(1, 3, 2_000),
            latency: LatencyModel::none(),
            elision: ElisionMode::default(),
            commit: CommitMode::Immediate,
        };
        let plain = run_queue_case(&mk(PolicyKind::Plain));
        let flit = run_queue_case(&mk(PolicyKind::FlitHt(1 << 20)));
        assert!(
            plain.pwbs_per_op() > 1.5 * flit.pwbs_per_op(),
            "plain {} vs flit {}",
            plain.pwbs_per_op(),
            flit.pwbs_per_op()
        );
    }

    #[test]
    fn queue_case_labels() {
        let case = QueueCase {
            dur: DurKind::Manual,
            policy: PolicyKind::Plain,
            config: QueueWorkloadConfig::producer_consumer(3, 1, 10),
            latency: LatencyModel::none(),
            elision: ElisionMode::default(),
            commit: CommitMode::Immediate,
        };
        assert_eq!(case.label(), "msqueue/manual/plain/pc-3:1");
        let batched = QueueCase {
            commit: CommitMode::Batched(8),
            ..case
        };
        assert_eq!(batched.label(), "msqueue/manual/plain/pc-3:1/batched-8");
        assert_eq!(QUEUE_DURS.len(), 2);
    }

    #[test]
    fn labels_and_applicability() {
        assert!(!PolicyKind::LinkAndPersist.applicable_to(DsKind::Bst));
        assert!(PolicyKind::LinkAndPersist.applicable_to(DsKind::List));
        assert_eq!(PolicyKind::FlitHt(1 << 20).name(), "flit-HT (1MB)");
        assert_eq!(PolicyKind::figure7_set(DsKind::Bst).len(), 3);
        assert_eq!(PolicyKind::figure7_set(DsKind::List).len(), 4);
        let case = Case {
            ds: DsKind::List,
            dur: DurKind::Manual,
            policy: PolicyKind::Plain,
            config: tiny_config(),
            latency: LatencyModel::none(),
            elision: ElisionMode::default(),
            commit: CommitMode::Immediate,
        };
        assert_eq!(case.label(), "list/manual/plain");
        let batched = Case {
            commit: CommitMode::Batched(4),
            ..case
        };
        assert_eq!(batched.label(), "list/manual/plain/batched-4");
    }
}
