//! Operation histories for crash-injection testing.
//!
//! The `flit-crashtest` engine replays a *history* — a fixed, single-threaded
//! sequence of operations — against a structure, once per crash point. The histories
//! here come in two flavours:
//!
//! * **scripted** — a fixed sequence that grows, drains and regrows the structure so
//!   the sweep crosses inserts into empty/non-empty states, removes of present/absent
//!   keys, and reads of both (the deterministic backbone every CI run exercises);
//! * **seeded random** — generated from a [`SmallRng`] seed, so a failing run is
//!   fully reproduced by `(seed, length, key range, crash event)`.
//!
//! Determinism is the whole point: a history replayed against a fresh tracking
//! backend produces the identical persistence-event stream every time, which is what
//! makes "crash at event N" a complete reproduction recipe. Since the structures
//! allocate from `flit-alloc` arenas, that stream is additionally
//! *layout-independent* — the same history yields byte-identical absolute event
//! indices across runs, processes and machines, and the sweep engine extends its
//! crash points over the structure-construction window that precedes the first
//! operation of every history here.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One map operation of a crash-test history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// Insert `(key, value)` (no overwrite, mirroring `ConcurrentMap::insert`).
    Insert(u64, u64),
    /// Remove a key.
    Remove(u64),
    /// Look a key up (reads matter: they can *help* unlink logically deleted nodes).
    Get(u64),
}

/// One queue operation of a crash-test history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// Enqueue a value at the tail.
    Enqueue(u64),
    /// Dequeue from the head (possibly observing empty).
    Dequeue,
}

/// The fixed scripted map history: grow, mixed churn, drain, regrow. Small enough
/// that a full every-event sweep stays fast, varied enough to cross every state
/// transition the map structures have.
pub fn scripted_map_history() -> Vec<MapOp> {
    let mut ops = Vec::new();
    for k in 0..10u64 {
        ops.push(MapOp::Insert(k, 100 + k));
    }
    for k in (0..10u64).step_by(2) {
        ops.push(MapOp::Remove(k));
    }
    // Reads of present and absent keys (these help-unlink marked nodes).
    ops.push(MapOp::Get(1));
    ops.push(MapOp::Get(2));
    // Re-insert over a removed key, duplicate insert, remove of absent key.
    ops.push(MapOp::Insert(2, 222));
    ops.push(MapOp::Insert(3, 333));
    ops.push(MapOp::Remove(6));
    ops.push(MapOp::Remove(6));
    for k in 1..10u64 {
        ops.push(MapOp::Remove(k));
    }
    for k in 20..26u64 {
        ops.push(MapOp::Insert(k, 2000 + k));
    }
    ops
}

/// A seeded random map history over keys `0..key_range`: ~40% inserts, ~30%
/// removes, ~30% gets. Identical `(seed, len, key_range)` always yields the
/// identical history.
pub fn random_map_history(seed: u64, len: usize, key_range: u64) -> Vec<MapOp> {
    assert!(key_range > 0, "key range must be non-empty");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let key = rng.gen_range(0..key_range);
            match rng.gen_range(0..10u32) {
                0..=3 => MapOp::Insert(key, (i as u64) << 16 | key),
                4..=6 => MapOp::Remove(key),
                _ => MapOp::Get(key),
            }
        })
        .collect()
}

/// The fixed scripted queue history: fill, partially drain, drain to empty (and
/// beyond — dequeue-of-empty is a distinct read-only path), refill.
pub fn scripted_queue_history() -> Vec<QueueOp> {
    let mut ops = Vec::new();
    for v in 0..12u64 {
        ops.push(QueueOp::Enqueue(v));
    }
    for _ in 0..6 {
        ops.push(QueueOp::Dequeue);
    }
    for v in 100..104u64 {
        ops.push(QueueOp::Enqueue(v));
    }
    // Drain past empty: two extra dequeues observe the empty queue.
    for _ in 0..12 {
        ops.push(QueueOp::Dequeue);
    }
    for v in 200..204u64 {
        ops.push(QueueOp::Enqueue(v));
    }
    ops
}

/// A seeded random queue history: ~55% enqueues, ~45% dequeues, so runs cross both
/// non-empty and drained-empty states. Identical `(seed, len)` always yields the
/// identical history.
pub fn random_queue_history(seed: u64, len: usize) -> Vec<QueueOp> {
    // Domain-separate from the map generator so the same seed does not correlate.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|i| {
            if rng.gen_range(0..100u32) < 55 {
                QueueOp::Enqueue((i as u64) + 1)
            } else {
                QueueOp::Dequeue
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_histories_are_fixed_and_nonempty() {
        assert_eq!(scripted_map_history(), scripted_map_history());
        assert_eq!(scripted_queue_history(), scripted_queue_history());
        assert!(scripted_map_history().len() >= 30);
        assert!(scripted_queue_history().len() >= 30);
    }

    #[test]
    fn random_histories_are_deterministic_per_seed() {
        assert_eq!(random_map_history(7, 50, 16), random_map_history(7, 50, 16));
        assert_ne!(random_map_history(7, 50, 16), random_map_history(8, 50, 16));
        assert_eq!(random_queue_history(7, 50), random_queue_history(7, 50));
        assert_ne!(random_queue_history(7, 50), random_queue_history(9, 50));
    }

    #[test]
    fn random_map_history_mixes_op_kinds() {
        let ops = random_map_history(3, 300, 8);
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, MapOp::Insert(..)))
            .count();
        let removes = ops.iter().filter(|o| matches!(o, MapOp::Remove(_))).count();
        let gets = ops.iter().filter(|o| matches!(o, MapOp::Get(_))).count();
        assert!(inserts > 0 && removes > 0 && gets > 0);
        assert!(ops.iter().all(|o| match o {
            MapOp::Insert(k, _) | MapOp::Remove(k) | MapOp::Get(k) => *k < 8,
        }));
    }
}
