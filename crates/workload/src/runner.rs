//! The multi-threaded throughput runner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use flit::Policy;
use flit_datastructs::ConcurrentMap;
use flit_pmem::StatsSnapshot;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::WorkloadConfig;

/// The outcome of one measured workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total operations executed across all threads.
    pub total_ops: u64,
    /// Wall-clock time of the measured interval.
    pub elapsed: Duration,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Persistence-instruction counts during the measured interval (zero for the
    /// non-persistent baseline).
    pub pmem: StatsSnapshot,
    /// Lookups that found their key (sanity signal that the prefill worked: around
    /// half the lookups should hit for the paper's workloads).
    pub hits: u64,
    /// Successful insert operations.
    pub inserts_ok: u64,
    /// Successful remove operations.
    pub removes_ok: u64,
}

impl RunResult {
    /// `pwb` instructions per operation (Figure 9's metric).
    pub fn pwbs_per_op(&self) -> f64 {
        self.pmem.pwbs_per_op(self.total_ops)
    }

    /// `pfence` instructions per operation.
    pub fn pfences_per_op(&self) -> f64 {
        self.pmem.pfences_per_op(self.total_ops)
    }
}

/// Pre-fill `map` with `cfg.prefill` distinct keys drawn from the key range, as the
/// paper does before each measured run.
pub fn prefill<P: Policy, M: ConcurrentMap<P>>(map: &M, cfg: &WorkloadConfig) {
    let h = map.db().handle();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_F111);
    let mut inserted = 0u64;
    while inserted < cfg.prefill.min(cfg.key_range) {
        let key = rng.gen_range(0..cfg.key_range);
        if map.insert(&h, key, key.wrapping_mul(3)) {
            inserted += 1;
        }
    }
}

/// A per-operation latency observer: called with each completed operation's
/// wall-clock nanoseconds. Must be `Sync` — the runners call it concurrently
/// from every worker thread (the benchmark harness passes an atomic histogram).
pub type LatencyObserver<'a> = dyn Fn(u64) + Sync + 'a;

/// Run one workload configuration against `map` and measure it.
///
/// Threads are spawned for the measured interval only; the map must already be
/// prefilled (see [`prefill`]) if a warm structure is wanted.
pub fn run_workload<P: Policy, M: ConcurrentMap<P>>(map: &M, cfg: &WorkloadConfig) -> RunResult {
    run_workload_observed(map, cfg, None)
}

/// [`run_workload`] with an optional per-operation [`LatencyObserver`], so the
/// benchmark harness can build latency distributions (p50/p99) without a second
/// measurement pass. With `None` the per-operation timing is skipped entirely.
pub fn run_workload_observed<P: Policy, M: ConcurrentMap<P>>(
    map: &M,
    cfg: &WorkloadConfig,
    observe: Option<&LatencyObserver<'_>>,
) -> RunResult {
    let before = map.policy().stats_snapshot().unwrap_or_default();
    let hits = AtomicU64::new(0);
    let inserts_ok = AtomicU64::new(0);
    let removes_ok = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..cfg.threads {
            let hits = &hits;
            let inserts_ok = &inserts_ok;
            let removes_ok = &removes_ok;
            let map = &map;
            scope.spawn(move || {
                // One explicit session per worker thread: its persist epoch is what
                // the elision decisions of this thread's operations consult.
                let h = map.db().handle();
                let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(tid as u64 * 0x9E37));
                let mut local_hits = 0u64;
                let mut local_ins = 0u64;
                let mut local_rem = 0u64;
                for _ in 0..cfg.ops_per_thread {
                    let key = rng.gen_range(0..cfg.key_range);
                    let roll = rng.gen_range(0..100u32);
                    let t0 = observe.map(|_| Instant::now());
                    if roll < cfg.update_percent {
                        // Updates split 50/50 between inserts and deletes.
                        if roll % 2 == 0 {
                            if map.insert(&h, key, key ^ 0xABCD) {
                                local_ins += 1;
                            }
                        } else if map.remove(&h, key) {
                            local_rem += 1;
                        }
                    } else if map.get(&h, key).is_some() {
                        local_hits += 1;
                    }
                    if let (Some(obs), Some(t0)) = (observe, t0) {
                        obs(t0.elapsed().as_nanos() as u64);
                    }
                }
                hits.fetch_add(local_hits, Ordering::Relaxed);
                inserts_ok.fetch_add(local_ins, Ordering::Relaxed);
                removes_ok.fetch_add(local_rem, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();

    let after = map.policy().stats_snapshot().unwrap_or_default();
    let total_ops = cfg.total_ops();
    RunResult {
        total_ops,
        elapsed,
        mops: total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        pmem: after.delta_since(&before),
        hits: hits.into_inner(),
        inserts_ok: inserts_ok.into_inner(),
        removes_ok: removes_ok.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit::{FlitDb, FlitPolicy, HashedScheme};
    use flit_datastructs::{Automatic, HarrisList, HashTable, NatarajanTree};
    use flit_pmem::{LatencyModel, SimNvram};

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    type Policy_ = FlitPolicy<HashedScheme, SimNvram>;

    #[test]
    fn prefill_reaches_the_requested_size() {
        let cfg = WorkloadConfig::new(1_000, 5, 2, 100);
        let map: NatarajanTree<Policy_, Automatic> =
            NatarajanTree::with_capacity(&FlitDb::flit_ht(backend()), 1_000);
        prefill(&map, &cfg);
        assert_eq!(map.len() as u64, cfg.prefill);
    }

    #[test]
    fn read_only_workload_reports_zero_read_side_pwbs() {
        let cfg = WorkloadConfig::new(256, 0, 2, 2_000);
        let map: HashTable<Policy_, Automatic> =
            HashTable::with_capacity(&FlitDb::flit_ht(backend()), 256);
        prefill(&map, &cfg);
        let result = run_workload(&map, &cfg);
        assert_eq!(result.total_ops, 4_000);
        assert_eq!(
            result.pmem.pwbs, 0,
            "0% updates must execute no pwbs with FliT"
        );
        assert!(result.hits > 0, "prefilled keys should be found");
        assert!(result.mops > 0.0);
    }

    #[test]
    fn update_workload_counts_pwbs_and_mutations() {
        let cfg = WorkloadConfig::new(128, 50, 2, 1_000);
        let map: HarrisList<Policy_, Automatic> =
            HarrisList::with_capacity(&FlitDb::flit_ht(backend()), 128);
        prefill(&map, &cfg);
        let result = run_workload(&map, &cfg);
        assert!(result.pmem.pwbs > 0);
        assert!(result.pmem.pfences > 0);
        assert!(result.inserts_ok + result.removes_ok > 0);
        assert!(result.pwbs_per_op() > 0.0);
        assert!(result.pfences_per_op() > 0.0);
    }

    #[test]
    fn results_are_reproducible_in_structure() {
        // Same seed, same config: the number of successful mutations must match
        // between runs on a freshly prefilled structure (the interleaving differs, but
        // with one thread the run is deterministic).
        let cfg = WorkloadConfig::new(64, 20, 1, 500);
        let run = |_: ()| {
            let map: HarrisList<Policy_, Automatic> =
                HarrisList::with_capacity(&FlitDb::flit_ht(backend()), 64);
            prefill(&map, &cfg);
            let r = run_workload(&map, &cfg);
            (r.hits, r.inserts_ok, r.removes_ok)
        };
        assert_eq!(run(()), run(()));
    }
}
