//! Request-stream generation for the sharded KV service (`flit-server`).
//!
//! The single-structure workloads of [`crate::runner`] sample uniform keys in a
//! closed loop; service benchmarks need more: **arrival control** (closed-loop
//! back-to-back issue vs. open-loop issue at a fixed offered rate, where latency
//! includes queueing delay) and **key skew** (Zipfian popularity, the standard
//! model of hot keys in KV traffic). This module generates those request
//! streams; *driving* them through a server and timing them is the benchmark
//! harness's job (`flit-bench`).
//!
//! Everything is deterministic: the `i`-th request of worker `w` is a pure
//! function of `(config, w, i)`, so a service history is fully reproduced by its
//! config — the same property the crash histories of [`crate::crash_history`]
//! are built on, and what makes the per-shard crash sweeps replayable.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::crash_history::MapOp;

/// How requests are issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Closed loop: each worker issues its next request the moment the previous
    /// reply arrives. Measures service capacity; latency is pure service time.
    Closed,
    /// Open loop: requests arrive at a fixed offered rate (million requests per
    /// second, across all workers) regardless of completions. Latency is
    /// measured from the *scheduled* arrival, so it includes queueing delay —
    /// the honest way to see tail latency under load.
    Open {
        /// Offered load in million requests per second, summed over workers.
        mops: f64,
    },
}

impl Arrival {
    /// Short name used in benchmark output (`"closed"` / `"open"`).
    pub fn name(&self) -> &'static str {
        match self {
            Arrival::Closed => "closed",
            Arrival::Open { .. } => "open",
        }
    }
}

/// One service benchmark workload: key population and skew, read/write mix,
/// worker count, per-worker request count, and the arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Keys are drawn from `0..key_range`.
    pub key_range: u64,
    /// Percentage of requests that are updates, split evenly between `Put` and
    /// `Del`; the rest are `Get`s.
    pub update_percent: u32,
    /// Zipf exponent for key popularity. `0.0` = uniform; `0.99` is the
    /// YCSB-style default for skewed traffic. Must be in `[0, 1)`.
    pub skew: f64,
    /// Number of client workers.
    pub workers: usize,
    /// Requests issued by each worker.
    pub requests_per_worker: u64,
    /// Keys inserted (via routed `Put`s) before measurement starts.
    pub prefill: u64,
    /// RNG seed; each worker derives its own stream from it.
    pub seed: u64,
    /// The arrival process.
    pub arrival: Arrival,
}

impl ServiceConfig {
    /// A closed-loop uniform-key config with the workspace's usual conventions:
    /// prefill to half the key range, fixed default seed.
    pub fn new(
        key_range: u64,
        update_percent: u32,
        workers: usize,
        requests_per_worker: u64,
    ) -> Self {
        assert!(key_range > 0);
        assert!(update_percent <= 100);
        assert!(workers > 0);
        Self {
            key_range,
            update_percent,
            skew: 0.0,
            workers,
            requests_per_worker,
            prefill: key_range / 2,
            seed: 0xF117_5E2F,
            arrival: Arrival::Closed,
        }
    }

    /// Override the Zipf skew exponent (`0.0` = uniform).
    pub fn with_skew(mut self, skew: f64) -> Self {
        assert!((0.0..1.0).contains(&skew), "skew must be in [0, 1)");
        self.skew = skew;
        self
    }

    /// Override the arrival process.
    pub fn with_arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the prefill size.
    pub fn with_prefill(mut self, prefill: u64) -> Self {
        self.prefill = prefill;
        self
    }

    /// Total requests across all workers.
    pub fn total_requests(&self) -> u64 {
        self.requests_per_worker * self.workers as u64
    }

    /// The scheduled arrival time, in nanoseconds after the run's start, of
    /// worker `w`'s `i`-th request — `None` for closed-loop configs. Workers
    /// interleave round-robin in the global arrival order, so the offered rate
    /// summed over workers is `mops`.
    pub fn deadline_ns(&self, worker: usize, i: u64) -> Option<u64> {
        match self.arrival {
            Arrival::Closed => None,
            Arrival::Open { mops } => {
                assert!(mops > 0.0, "open-loop rate must be positive");
                let global_index = i * self.workers as u64 + worker as u64;
                // One request every 1/mops microseconds = 1000/mops ns.
                Some((global_index as f64 * 1e3 / mops) as u64)
            }
        }
    }
}

/// A sampler of keys from `0..key_range`, uniform or Zipfian.
///
/// The Zipf variant precomputes the CDF over key popularity ranks (rank `r` has
/// probability proportional to `1 / (r+1)^skew`) and samples by binary search;
/// rank `r` maps to key `r`, so low keys are the hot keys — harmless, since
/// every structure under test hashes or compares keys rather than indexing by
/// them. Sampling consumes exactly one RNG word either way.
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform over `0..key_range`.
    Uniform(u64),
    /// Zipfian via a precomputed CDF (one entry per key).
    Zipf(Vec<f64>),
}

/// Largest key range the Zipf sampler will build a CDF table for.
pub const MAX_ZIPF_KEYS: u64 = 1 << 22;

impl KeySampler {
    /// Build the sampler described by `(key_range, skew)`.
    pub fn new(key_range: u64, skew: f64) -> Self {
        assert!(key_range > 0);
        assert!((0.0..1.0).contains(&skew), "skew must be in [0, 1)");
        if skew == 0.0 {
            return KeySampler::Uniform(key_range);
        }
        assert!(
            key_range <= MAX_ZIPF_KEYS,
            "Zipf sampling tabulates one CDF entry per key; key range {key_range} exceeds {MAX_ZIPF_KEYS}"
        );
        let mut cdf = Vec::with_capacity(key_range as usize);
        let mut acc = 0.0f64;
        for rank in 0..key_range {
            acc += 1.0 / ((rank + 1) as f64).powf(skew);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        KeySampler::Zipf(cdf)
    }

    /// Draw one key.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            KeySampler::Uniform(range) => rng.gen_range(0..*range),
            KeySampler::Zipf(cdf) => {
                // 53 random bits → uniform f64 in [0, 1).
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                cdf.partition_point(|&p| p < u) as u64
            }
        }
    }
}

/// The deterministic request stream of worker `worker`: a pure function of
/// `(cfg, worker)`. Values carry the worker id in their high bits (below bit
/// 63, so link-and-persist's reserved dirty bit stays clear) for debuggability.
pub fn service_history(cfg: &ServiceConfig, worker: usize) -> Vec<MapOp> {
    assert!(worker < cfg.workers);
    let sampler = KeySampler::new(cfg.key_range, cfg.skew);
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(worker as u64 * 0x9E37));
    (0..cfg.requests_per_worker)
        .map(|i| {
            let key = sampler.sample(&mut rng);
            let roll = rng.gen_range(0..100u32);
            if roll < cfg.update_percent {
                if roll % 2 == 0 {
                    MapOp::Insert(key, ((worker as u64) << 40) | i)
                } else {
                    MapOp::Remove(key)
                }
            } else {
                MapOp::Get(key)
            }
        })
        .collect()
}

/// The deterministic prefill stream: `cfg.prefill` *distinct* keys (uniform,
/// regardless of skew — prefill populates the store, it does not model
/// traffic), as `Insert` ops, domain-separated from the request streams.
pub fn prefill_history(cfg: &ServiceConfig) -> Vec<MapOp> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED_F111);
    let mut seen = std::collections::HashSet::new();
    let target = cfg.prefill.min(cfg.key_range) as usize;
    let mut ops = Vec::with_capacity(target);
    while ops.len() < target {
        let key = rng.gen_range(0..cfg.key_range);
        if seen.insert(key) {
            ops.push(MapOp::Insert(key, key.wrapping_mul(3)));
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServiceConfig {
        ServiceConfig::new(1_000, 20, 2, 500)
    }

    #[test]
    fn histories_are_deterministic_and_per_worker_distinct() {
        assert_eq!(service_history(&cfg(), 0), service_history(&cfg(), 0));
        assert_ne!(service_history(&cfg(), 0), service_history(&cfg(), 1));
        assert_eq!(prefill_history(&cfg()), prefill_history(&cfg()));
        assert_ne!(
            service_history(&cfg(), 0),
            service_history(&cfg().with_seed(1), 0)
        );
    }

    #[test]
    fn histories_respect_the_mix() {
        let ops = service_history(&cfg(), 0);
        assert_eq!(ops.len(), 500);
        let updates = ops.iter().filter(|o| !matches!(o, MapOp::Get(_))).count();
        // 20% updates with generous slack for a 500-sample draw.
        assert!((50..150).contains(&updates), "updates = {updates}");
        assert!(ops.iter().all(|o| match o {
            MapOp::Insert(k, _) | MapOp::Remove(k) | MapOp::Get(k) => *k < 1_000,
        }));
    }

    #[test]
    fn prefill_is_distinct_keys() {
        let ops = prefill_history(&cfg());
        assert_eq!(ops.len(), 500);
        let mut keys: Vec<u64> = ops
            .iter()
            .map(|o| match o {
                MapOp::Insert(k, _) => *k,
                _ => unreachable!(),
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let uniform = KeySampler::new(1_000, 0.0);
        let zipf = KeySampler::new(1_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(42);
        let hot =
            |s: &KeySampler, rng: &mut SmallRng| (0..10_000).filter(|_| s.sample(rng) < 10).count();
        let hot_uniform = hot(&uniform, &mut rng);
        let hot_zipf = hot(&zipf, &mut rng);
        // Under 0.99-Zipf the 10 hottest of 1000 keys draw a large share of the
        // traffic; under uniform they draw about 1%.
        assert!(hot_zipf > 5 * hot_uniform, "{hot_zipf} vs {hot_uniform}");
        // Samples stay in range.
        for _ in 0..1_000 {
            assert!(zipf.sample(&mut rng) < 1_000);
        }
    }

    #[test]
    fn open_loop_deadlines_interleave_workers_at_the_offered_rate() {
        let c = cfg().with_arrival(Arrival::Open { mops: 0.5 });
        // 0.5 Mops total → one request every 2µs globally; two workers
        // round-robin, so each worker issues every 4µs.
        assert_eq!(c.deadline_ns(0, 0), Some(0));
        assert_eq!(c.deadline_ns(1, 0), Some(2_000));
        assert_eq!(c.deadline_ns(0, 1), Some(4_000));
        assert_eq!(cfg().deadline_ns(0, 5), None);
        assert_eq!(Arrival::Closed.name(), "closed");
        assert_eq!(Arrival::Open { mops: 1.0 }.name(), "open");
    }
}
