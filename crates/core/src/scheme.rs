//! Flit-counter placement strategies ("tag schemes").
//!
//! The FliT algorithm (paper §5) associates a small counter with every persisted
//! memory word: a pending p-store increments it ("tags" the location) and decrements
//! it after flushing; a p-load flushes the location only when the counter is non-zero.
//! Where those counters live is deliberately left open by the paper (§5.1) — this
//! module implements every placement the evaluation studies plus the future-work
//! option of one counter per cache line:
//!
//! * [`PlainScheme`] — no counters at all; every location always reports "tagged", so
//!   p-loads always flush. This is the *plain* comparator of the evaluation.
//! * [`AdjacentScheme`] — an 8-bit counter stored next to each word (the
//!   *flit-adjacent* variant). Cheapest to access, but doubles the footprint of every
//!   persisted word.
//! * [`HashedScheme`] — a shared table of counters indexed by a hash of the address
//!   (the *flit-HT* variant). Several locations may share one counter; that is safe
//!   (at worst a spurious read-side flush) and keeps the data structure layout
//!   unchanged. Figure 5 of the paper tunes the table size.
//! * [`CacheLineScheme`] — one counter per 64-byte cache line, the variant paper §8
//!   suggests as future work. Implemented here as an extension.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use flit_pmem::cache_line::cache_line_of;

/// How p-stores tag locations and p-loads query tags. See the module docs.
///
/// `PerWord` is the metadata embedded in every persisted word: the adjacent scheme
/// stores its counter there, while table-based schemes keep it zero-sized so that the
/// memory layout of data-structure nodes is unchanged (one of the paper's key
/// flexibility arguments versus link-and-persist).
pub trait TagScheme: Send + Sync + Clone + 'static {
    /// Metadata stored inline in each persisted word.
    type PerWord: Default + Send + Sync;

    /// Short static name used in benchmark output (e.g. `"flit-adjacent"`).
    const NAME: &'static str;

    /// A p-store is about to write to `addr`: tag the location.
    fn begin_store(&self, per_word: &Self::PerWord, addr: usize);

    /// The p-store to `addr` has been flushed and fenced: untag the location.
    fn end_store(&self, per_word: &Self::PerWord, addr: usize);

    /// Is the location currently tagged (i.e. might a p-store be pending)?
    fn is_tagged(&self, per_word: &Self::PerWord, addr: usize) -> bool;

    /// Whether read-side flushes issued for this scheme may be deduplicated within
    /// the reading thread's persist epoch
    /// ([`PmemBackend::pwb_dedup`](flit_pmem::PmemBackend::pwb_dedup)).
    ///
    /// `true` for the real FliT schemes. [`PlainScheme`] returns `false`: *plain*
    /// is the evaluation's baseline, whose defining cost is one `pwb` per p-load —
    /// deduplicating it would silently change the Figure 9 quantity the comparison
    /// is about.
    #[inline]
    fn dedups_read_flushes(&self) -> bool {
        true
    }

    /// Whether a p-store's untag may be deferred past the store and performed
    /// later **by address alone**, with no access to the word's [`PerWord`](TagScheme::PerWord)
    /// metadata.
    ///
    /// Group commit ([`CommitMode`](flit_pmem::CommitMode)`::Batched`) defers the
    /// store's trailing fence to the owning handle's next fence point; until then
    /// the word must stay *tagged* so concurrent readers keep issuing the helping
    /// flush that discharges Condition 4 across threads. Closing that tag happens
    /// after the word may already have been unlinked and reclaimed, which is only
    /// memory-safe when the counter lives *outside* the word: `true` for the
    /// table-based schemes (and the counter-free plain baseline), `false` for
    /// [`AdjacentScheme`], whose counter is embedded in the node — batched stores
    /// keep their inline trailing fence there.
    #[inline]
    fn defers_store_close(&self) -> bool {
        false
    }

    /// Untag `addr` without per-word metadata. Called only for schemes that
    /// return `true` from [`defers_store_close`](Self::defers_store_close).
    #[inline]
    fn end_store_deferred(&self, _addr: usize) {
        unreachable!("scheme does not support deferred store closes")
    }

    /// Human-readable label including instance parameters (e.g. the table size).
    fn describe(&self) -> String {
        Self::NAME.to_string()
    }
}

// ---------------------------------------------------------------------------------
// Plain: no tagging, always flush on p-load.
// ---------------------------------------------------------------------------------

/// The *plain* transformation: p-loads always flush their location, exactly as in the
/// Izraelevitz et al. construction the paper compares against.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainScheme;

impl TagScheme for PlainScheme {
    type PerWord = ();
    const NAME: &'static str = "plain";

    #[inline]
    fn begin_store(&self, _per_word: &(), _addr: usize) {}

    #[inline]
    fn end_store(&self, _per_word: &(), _addr: usize) {}

    #[inline]
    fn is_tagged(&self, _per_word: &(), _addr: usize) -> bool {
        // Treat every location as permanently tagged: a p-load can never skip its
        // flush. This turns Algorithm 4 into the naive persist-everything scheme.
        true
    }

    #[inline]
    fn dedups_read_flushes(&self) -> bool {
        // The baseline's one-pwb-per-p-load cost is the point of the comparison;
        // keep it paper-literal even when the backend elides.
        false
    }

    #[inline]
    fn defers_store_close(&self) -> bool {
        // No per-word state at all, so a late close is trivially safe (and a
        // no-op: every location reads as tagged regardless).
        true
    }

    #[inline]
    fn end_store_deferred(&self, _addr: usize) {}
}

// ---------------------------------------------------------------------------------
// Adjacent: one 8-bit counter physically next to each word.
// ---------------------------------------------------------------------------------

/// The *flit-adjacent* placement: each persisted word carries its own 8-bit
/// flit-counter, so checking or updating the tag never incurs an extra cache miss —
/// at the cost of changing the memory layout of every node (paper §5.1, §6.6).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdjacentScheme;

impl TagScheme for AdjacentScheme {
    type PerWord = AtomicU8;
    const NAME: &'static str = "flit-adjacent";

    #[inline]
    fn begin_store(&self, per_word: &AtomicU8, _addr: usize) {
        let prev = per_word.fetch_add(1, Ordering::AcqRel);
        debug_assert!(
            prev < u8::MAX,
            "flit-counter overflow: more than 254 concurrent p-stores"
        );
    }

    #[inline]
    fn end_store(&self, per_word: &AtomicU8, _addr: usize) {
        let prev = per_word.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "flit-counter underflow");
    }

    #[inline]
    fn is_tagged(&self, per_word: &AtomicU8, _addr: usize) -> bool {
        per_word.load(Ordering::Acquire) > 0
    }
}

// ---------------------------------------------------------------------------------
// Hashed: a shared table of counters.
// ---------------------------------------------------------------------------------

/// Shared table of 8-bit flit-counters indexed by a hash of the word address
/// (the *flit-HT* placement). The table size is the experiment knob of Figure 5.
///
/// Collisions are benign: two locations sharing a counter can at worst cause a
/// spurious read-side flush while an unrelated p-store is pending (paper §5.1).
#[derive(Clone)]
pub struct HashedScheme {
    table: Arc<CounterTable>,
    /// Right-shift applied to the address before hashing: 3 for word granularity,
    /// 6 to map every word of a cache line to the same counter.
    granularity_shift: u32,
}

impl std::fmt::Debug for HashedScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashedScheme")
            .field("bytes", &self.table.len())
            .field("granularity_shift", &self.granularity_shift)
            .finish()
    }
}

/// The backing store of a [`HashedScheme`] / [`CacheLineScheme`]: a power-of-two array
/// of 8-bit counters (one byte per counter, so a "1MB table" holds 2^20 counters —
/// the packing the paper describes in §5.1).
pub struct CounterTable {
    counters: Box<[AtomicU8]>,
    mask: usize,
}

impl CounterTable {
    /// Create a table occupying `bytes` bytes (rounded up to a power of two, minimum
    /// 64 bytes / one cache line).
    pub fn new(bytes: usize) -> Self {
        let len = bytes.next_power_of_two().max(64);
        let counters: Box<[AtomicU8]> = (0..len).map(|_| AtomicU8::new(0)).collect();
        Self {
            counters,
            mask: len - 1,
        }
    }

    /// Size of the table in bytes (== number of counters).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` when the table has no counters (never the case for constructed tables).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Number of counters currently non-zero (diagnostic, O(n)).
    pub fn tagged_count(&self) -> usize {
        self.counters
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) > 0)
            .count()
    }

    #[inline]
    fn slot(&self, key: usize) -> &AtomicU8 {
        &self.counters[Self::mix(key) & self.mask]
    }

    /// Fibonacci-style multiplicative hash: spreads nearby addresses across the table
    /// so that a hot cache line of the data structure does not keep hitting the same
    /// counter cache line (the collision type (2) discussed for Figure 5).
    #[inline]
    fn mix(key: usize) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 17
    }
}

impl HashedScheme {
    /// Default table size used throughout the paper's plots after Figure 5: 1 MB.
    pub const DEFAULT_BYTES: usize = 1 << 20;

    /// A 1 MB table at word granularity (the configuration used for most figures).
    pub fn new_default() -> Self {
        Self::with_bytes(Self::DEFAULT_BYTES)
    }

    /// A table of the given size (bytes = number of counters) at word granularity.
    pub fn with_bytes(bytes: usize) -> Self {
        Self {
            table: Arc::new(CounterTable::new(bytes)),
            granularity_shift: 3,
        }
    }

    /// Size of the backing table in bytes.
    pub fn table_bytes(&self) -> usize {
        self.table.len()
    }

    /// Access to the backing table (diagnostics and tests).
    pub fn table(&self) -> &CounterTable {
        &self.table
    }

    #[inline]
    fn key(&self, addr: usize) -> usize {
        addr >> self.granularity_shift
    }
}

impl TagScheme for HashedScheme {
    type PerWord = ();
    const NAME: &'static str = "flit-HT";

    #[inline]
    fn begin_store(&self, _per_word: &(), addr: usize) {
        let prev = self
            .table
            .slot(self.key(addr))
            .fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev < u8::MAX, "flit-counter overflow");
    }

    #[inline]
    fn end_store(&self, _per_word: &(), addr: usize) {
        let prev = self
            .table
            .slot(self.key(addr))
            .fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "flit-counter underflow");
    }

    #[inline]
    fn is_tagged(&self, _per_word: &(), addr: usize) -> bool {
        self.table.slot(self.key(addr)).load(Ordering::Acquire) > 0
    }

    #[inline]
    fn defers_store_close(&self) -> bool {
        // The counter lives in the shared table, not the word: decrementing it
        // after the word's node has been reclaimed touches no freed memory.
        true
    }

    #[inline]
    fn end_store_deferred(&self, addr: usize) {
        self.end_store(&(), addr);
    }

    fn describe(&self) -> String {
        format!("{} ({})", Self::NAME, human_bytes(self.table.len()))
    }
}

// ---------------------------------------------------------------------------------
// Cache-line granularity (paper §8 future work).
// ---------------------------------------------------------------------------------

/// One shared counter per 64-byte cache line, hashed into a table — the counter
/// allocation strategy the paper's conclusion lists as unexplored future work.
/// Compared to [`HashedScheme`] it reduces the number of distinct counters touched by
/// a multi-word object at the price of more sharing-induced spurious flushes.
#[derive(Clone)]
pub struct CacheLineScheme {
    inner: HashedScheme,
}

impl std::fmt::Debug for CacheLineScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheLineScheme")
            .field("bytes", &self.inner.table.len())
            .finish()
    }
}

impl CacheLineScheme {
    /// A table of the given size with one counter per cache line of the tracked data.
    pub fn with_bytes(bytes: usize) -> Self {
        Self {
            inner: HashedScheme {
                table: Arc::new(CounterTable::new(bytes)),
                granularity_shift: 6,
            },
        }
    }

    /// A 1 MB table (same default as [`HashedScheme`]).
    pub fn new_default() -> Self {
        Self::with_bytes(HashedScheme::DEFAULT_BYTES)
    }

    /// Size of the backing table in bytes.
    pub fn table_bytes(&self) -> usize {
        self.inner.table.len()
    }
}

impl TagScheme for CacheLineScheme {
    type PerWord = ();
    const NAME: &'static str = "flit-cacheline";

    #[inline]
    fn begin_store(&self, per_word: &(), addr: usize) {
        self.inner.begin_store(per_word, cache_line_of(addr));
    }

    #[inline]
    fn end_store(&self, per_word: &(), addr: usize) {
        self.inner.end_store(per_word, cache_line_of(addr));
    }

    #[inline]
    fn is_tagged(&self, per_word: &(), addr: usize) -> bool {
        self.inner.is_tagged(per_word, cache_line_of(addr))
    }

    #[inline]
    fn defers_store_close(&self) -> bool {
        true
    }

    #[inline]
    fn end_store_deferred(&self, addr: usize) {
        // `end_store` applies the cache-line mapping itself.
        self.end_store(&(), addr);
    }

    fn describe(&self) -> String {
        format!("{} ({})", Self::NAME, human_bytes(self.inner.table.len()))
    }
}

/// Render a byte count the way the paper labels its hash-table sizes (4KB, 1MB, ...).
pub fn human_bytes(bytes: usize) -> String {
    if bytes >= 1 << 30 {
        format!("{}GB", bytes >> 30)
    } else if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_is_always_tagged() {
        let s = PlainScheme;
        assert!(s.is_tagged(&(), 0x1000));
        s.begin_store(&(), 0x1000);
        s.end_store(&(), 0x1000);
        assert!(s.is_tagged(&(), 0x1000));
        assert_eq!(s.describe(), "plain");
    }

    #[test]
    fn only_plain_opts_out_of_read_flush_dedup() {
        assert!(!PlainScheme.dedups_read_flushes());
        assert!(AdjacentScheme.dedups_read_flushes());
        assert!(HashedScheme::with_bytes(64).dedups_read_flushes());
        assert!(CacheLineScheme::with_bytes(64).dedups_read_flushes());
    }

    #[test]
    fn adjacent_counter_tags_and_untags() {
        let s = AdjacentScheme;
        let c = AtomicU8::new(0);
        assert!(!s.is_tagged(&c, 0x40));
        s.begin_store(&c, 0x40);
        assert!(s.is_tagged(&c, 0x40));
        s.begin_store(&c, 0x40); // a second concurrent p-store
        s.end_store(&c, 0x40);
        assert!(
            s.is_tagged(&c, 0x40),
            "still tagged while one store is pending"
        );
        s.end_store(&c, 0x40);
        assert!(!s.is_tagged(&c, 0x40));
    }

    #[test]
    fn hashed_counter_tags_by_address() {
        let s = HashedScheme::with_bytes(1 << 16);
        let a = 0xA000usize;
        assert!(!s.is_tagged(&(), a));
        s.begin_store(&(), a);
        assert!(s.is_tagged(&(), a));
        s.end_store(&(), a);
        assert!(!s.is_tagged(&(), a));
    }

    #[test]
    fn hashed_collisions_are_possible_but_balanced() {
        // With a tiny table every counter is shared by many addresses; with a large
        // table distinct addresses rarely collide.
        let tiny = HashedScheme::with_bytes(64);
        let large = HashedScheme::with_bytes(1 << 20);
        let addrs: Vec<usize> = (0..512).map(|i| 0x10_0000 + i * 8).collect();
        for &a in &addrs {
            tiny.begin_store(&(), a);
            large.begin_store(&(), a);
        }
        assert!(tiny.table().tagged_count() <= 64);
        // The large table should spread 512 addresses over hundreds of counters.
        assert!(
            large.table().tagged_count() > 256,
            "hash should spread addresses"
        );
        for &a in &addrs {
            tiny.end_store(&(), a);
            large.end_store(&(), a);
        }
        assert_eq!(tiny.table().tagged_count(), 0);
        assert_eq!(large.table().tagged_count(), 0);
    }

    #[test]
    fn cache_line_scheme_shares_counters_within_a_line() {
        let s = CacheLineScheme::with_bytes(1 << 16);
        let base = 0x4_0000usize;
        s.begin_store(&(), base);
        // Every word of the same cache line must observe the tag.
        for off in (0..64).step_by(8) {
            assert!(s.is_tagged(&(), base + off));
        }
        // A different line should (almost certainly) not be tagged.
        assert!(!s.is_tagged(&(), base + 4096));
        s.end_store(&(), base);
        assert!(!s.is_tagged(&(), base));
    }

    #[test]
    fn table_sizes_round_to_powers_of_two() {
        assert_eq!(CounterTable::new(1000).len(), 1024);
        assert_eq!(CounterTable::new(4096).len(), 4096);
        assert_eq!(CounterTable::new(1).len(), 64);
    }

    #[test]
    fn describe_labels_match_the_paper() {
        assert_eq!(
            HashedScheme::with_bytes(4 << 10).describe(),
            "flit-HT (4KB)"
        );
        assert_eq!(
            HashedScheme::with_bytes(1 << 20).describe(),
            "flit-HT (1MB)"
        );
        assert_eq!(AdjacentScheme.describe(), "flit-adjacent");
        assert!(CacheLineScheme::new_default()
            .describe()
            .contains("flit-cacheline"));
    }

    #[test]
    fn human_bytes_formatting() {
        assert_eq!(human_bytes(64), "64B");
        assert_eq!(human_bytes(4096), "4KB");
        assert_eq!(human_bytes(1 << 20), "1MB");
        assert_eq!(human_bytes(64 << 20), "64MB");
        assert_eq!(human_bytes(1 << 30), "1GB");
    }

    #[test]
    fn concurrent_tagging_stress() {
        let s = HashedScheme::with_bytes(1 << 12);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..2000usize {
                        let addr = 0x100000 + ((t * 7919 + i * 13) % 1024) * 8;
                        s.begin_store(&(), addr);
                        std::hint::black_box(s.is_tagged(&(), addr));
                        s.end_store(&(), addr);
                    }
                });
            }
        });
        assert_eq!(
            s.table().tagged_count(),
            0,
            "all counters must return to zero"
        );
    }
}
