//! The [`Policy`] abstraction: *how* p-instructions are implemented.
//!
//! The P-V Interface (paper §3) specifies *what* p- and v-instructions guarantee; a
//! policy is one concrete implementation of that interface. The paper's evaluation
//! compares four:
//!
//! | paper name        | policy type here                                   |
//! |--------------------|----------------------------------------------------|
//! | plain              | [`PlainPolicy<B>`](crate::flit_atomic::PlainPolicy) (= FliT with the always-tagged scheme) |
//! | flit-adjacent      | [`FlitPolicy<AdjacentScheme, B>`](crate::flit_atomic::FlitPolicy) |
//! | flit-HT            | [`FlitPolicy<HashedScheme, B>`](crate::flit_atomic::FlitPolicy) |
//! | link-and-persist   | [`LinkAndPersistPolicy<B>`](crate::link_persist::LinkAndPersistPolicy) |
//! | non-persistent     | [`NoPersistPolicy`](crate::no_persist::NoPersistPolicy) |
//!
//! Data structures are written once, generic over `P: Policy`, and every word they
//! declare as `P::Word<T>` behaves according to the chosen policy — this is the Rust
//! equivalent of the paper's `persist<T>` template declaration.
//!
//! ## Handles, not ambient threads
//!
//! Every word operation takes the calling thread's **[`FlitHandle`]** as an
//! explicit context argument: the handle carries the policy (schemes that keep
//! their flit-counters in a shared table live there), the backend, and the
//! per-handle persist-epoch state that decides which fences and flushes may be
//! elided. Per-operation bookkeeping ([`FlitHandle::operation_completion`],
//! [`FlitHandle::persist_object`](crate::FlitHandle::persist_object)) lives on
//! the handle too; the `Policy` itself is pure configuration.

use flit_pmem::{PmemBackend, StatsSnapshot};

use crate::db::FlitHandle;
use crate::pflag::PFlag;
use crate::word::PWord;

/// One persisted word as exposed to data-structure code: the Rust counterpart of the
/// paper's `persist<T>` member functions (Figure 1).
///
/// Every method takes the calling thread's [`FlitHandle`] as an explicit context
/// argument (`h`): the handle reaches the owning policy (schemes, backend) and
/// owns the persist-epoch state each instruction must be attributed to.
///
/// The `*_private` variants implement the cheaper code path the paper describes for
/// locations not yet (or no longer) reachable by other threads.
pub trait PersistWord<T: PWord, P: Policy>: Send + Sync + 'static {
    /// Create a word holding `val`. No persistence actions are taken: a freshly
    /// created word is private until it is published, and the publishing code decides
    /// how to persist the initial value (typically [`FlitHandle::persist_object`]).
    fn new(val: T) -> Self;

    /// Shared load (`persist<T>::load(pflag)`).
    fn load(&self, h: &FlitHandle<'_, P>, flag: PFlag) -> T;

    /// Shared store (`persist<T>::write(value, pflag)`).
    fn store(&self, h: &FlitHandle<'_, P>, val: T, flag: PFlag);

    /// Shared compare-and-swap. Returns `Ok(previous)` on success and `Err(actual)`
    /// when the current value did not match `current`.
    fn compare_exchange(
        &self,
        h: &FlitHandle<'_, P>,
        current: T,
        new: T,
        flag: PFlag,
    ) -> Result<T, T>;

    /// Shared atomic exchange (`persist<T>::exchange`). Returns the previous value.
    fn exchange(&self, h: &FlitHandle<'_, P>, val: T, flag: PFlag) -> T;

    /// Shared fetch-and-add on the word's 64-bit representation
    /// (`persist<T>::FAA`; only meaningful for integer `T`). Returns the previous
    /// value.
    fn fetch_add(&self, h: &FlitHandle<'_, P>, delta: u64, flag: PFlag) -> T;

    /// Private load: the location cannot be concurrently accessed.
    fn load_private(&self, h: &FlitHandle<'_, P>, flag: PFlag) -> T;

    /// Private store: the location cannot be concurrently accessed, so the
    /// flit-counter and the leading fence are skipped (paper §5).
    fn store_private(&self, h: &FlitHandle<'_, P>, val: T, flag: PFlag);

    /// Raw load with no persistence semantics whatsoever. Intended for `Drop`
    /// implementations and single-threaded teardown/validation code.
    fn load_direct(&self) -> T;

    /// Raw store with no persistence semantics whatsoever (initialisation helpers).
    fn store_direct(&self, val: T);

    /// The address of the underlying word (used by schemes, flushes and tests).
    fn addr(&self) -> usize;
}

/// A persistence policy: a [`TagScheme`](crate::scheme::TagScheme) (or other tagging
/// mechanism) plus a [`PmemBackend`], packaged so that data structures can be written
/// once and instantiated with any combination.
///
/// A policy is pure configuration: per-thread session state lives in
/// [`FlitHandle`], and the facade that owns a policy (plus the collector and
/// arenas) is [`FlitDb`](crate::FlitDb).
pub trait Policy: Send + Sync + Sized + 'static {
    /// The persistent-memory backend in use. The `Send + Sync + 'static` bounds
    /// make the *stored* backend shareable; the per-handle
    /// [`PmemSession`](flit_pmem::PmemSession) view through which operations
    /// issue instructions is intentionally not subject to them.
    type Backend: PmemBackend + Send + Sync + 'static;

    /// The persisted-word cell type for values of type `T`.
    type Word<T: PWord>: PersistWord<T, Self>;

    /// `false` only for the non-persistent baseline, which lets generic code skip
    /// persistence work entirely.
    const PERSISTENT: bool = true;

    /// Access the backend (for statistics and direct flushing).
    fn backend(&self) -> &Self::Backend;

    /// Human-readable label for benchmark output (e.g. `"flit-HT (1MB)"`).
    fn label(&self) -> String;

    /// Whether this policy's p-stores may defer their trailing fence (and untag)
    /// to the owning handle's next fence point under group commit
    /// ([`CommitMode::Batched`](flit_pmem::CommitMode)). `false` — the safe
    /// default — keeps every p-store's inline trailing fence regardless of
    /// commit mode (see [`TagScheme::defers_store_close`](crate::scheme::TagScheme::defers_store_close)).
    fn defers_store_fence(&self) -> bool {
        false
    }

    /// Close a p-store whose untag was deferred by group commit. Only called on
    /// policies returning `true` from [`defers_store_fence`](Self::defers_store_fence),
    /// after the deferring handle fenced.
    fn close_deferred_store(&self, _addr: usize) {}

    /// Snapshot of the backend's persistence-instruction counters, if it keeps any.
    fn stats_snapshot(&self) -> Option<StatsSnapshot> {
        self.backend().pmem_stats().map(|s| s.snapshot())
    }
}

#[cfg(test)]
mod tests {
    // The concrete policies have their own test modules; here we only check the
    // handle-level helpers (`operation_completion`, `persist_range`,
    // `persist_object`) through a minimal hand-rolled policy.
    use super::*;
    use crate::db::FlitDb;
    use flit_pmem::{LatencyModel, SimNvram};
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct DummyWord<T> {
        repr: AtomicU64,
        _t: PhantomData<fn() -> T>,
    }

    impl<T: PWord> PersistWord<T, DummyPolicy> for DummyWord<T> {
        fn new(val: T) -> Self {
            Self {
                repr: AtomicU64::new(val.to_word()),
                _t: PhantomData,
            }
        }
        fn load(&self, _h: &FlitHandle<'_, DummyPolicy>, _flag: PFlag) -> T {
            T::from_word(self.repr.load(Ordering::SeqCst))
        }
        fn store(&self, _h: &FlitHandle<'_, DummyPolicy>, val: T, _flag: PFlag) {
            self.repr.store(val.to_word(), Ordering::SeqCst)
        }
        fn compare_exchange(
            &self,
            _h: &FlitHandle<'_, DummyPolicy>,
            current: T,
            new: T,
            _flag: PFlag,
        ) -> Result<T, T> {
            self.repr
                .compare_exchange(
                    current.to_word(),
                    new.to_word(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .map(T::from_word)
                .map_err(T::from_word)
        }
        fn exchange(&self, _h: &FlitHandle<'_, DummyPolicy>, val: T, _flag: PFlag) -> T {
            T::from_word(self.repr.swap(val.to_word(), Ordering::SeqCst))
        }
        fn fetch_add(&self, _h: &FlitHandle<'_, DummyPolicy>, delta: u64, _flag: PFlag) -> T {
            T::from_word(self.repr.fetch_add(delta, Ordering::SeqCst))
        }
        fn load_private(&self, h: &FlitHandle<'_, DummyPolicy>, flag: PFlag) -> T {
            self.load(h, flag)
        }
        fn store_private(&self, h: &FlitHandle<'_, DummyPolicy>, val: T, flag: PFlag) {
            self.store(h, val, flag)
        }
        fn load_direct(&self) -> T {
            T::from_word(self.repr.load(Ordering::Relaxed))
        }
        fn store_direct(&self, val: T) {
            self.repr.store(val.to_word(), Ordering::Relaxed)
        }
        fn addr(&self) -> usize {
            &self.repr as *const AtomicU64 as usize
        }
    }

    struct DummyPolicy {
        backend: SimNvram,
    }

    impl Policy for DummyPolicy {
        type Backend = SimNvram;
        type Word<T: PWord> = DummyWord<T>;
        fn backend(&self) -> &SimNvram {
            &self.backend
        }
        fn label(&self) -> String {
            "dummy".into()
        }
    }

    fn dummy_db() -> FlitDb<DummyPolicy> {
        FlitDb::create(DummyPolicy {
            backend: SimNvram::builder().latency(LatencyModel::none()).build(),
        })
    }

    #[test]
    fn operation_completion_fences_only_dirty_handles() {
        let db = dummy_db();
        let h = db.handle();
        // A clean handle's completion fence would persist nothing: elided.
        h.operation_completion();
        assert_eq!(db.stats_snapshot().unwrap().pfences, 0);
        assert_eq!(db.stats_snapshot().unwrap().elided_pfences, 1);
        // After a pwb through the handle the completion fence must fire.
        let x = 1u64;
        h.pmem().pwb(&x as *const u64 as *const u8);
        h.operation_completion();
        assert_eq!(db.stats_snapshot().unwrap().pfences, 1);
    }

    #[test]
    fn operation_completion_is_literal_when_elision_is_disabled() {
        let db = FlitDb::create(DummyPolicy {
            backend: SimNvram::builder()
                .latency(LatencyModel::none())
                .elision(flit_pmem::ElisionMode::Disabled)
                .build(),
        });
        let h = db.handle();
        h.operation_completion();
        h.operation_completion();
        assert_eq!(db.stats_snapshot().unwrap().pfences, 2);
    }

    #[test]
    fn persist_range_flushes_every_touched_line() {
        let db = dummy_db();
        let h = db.handle();
        // 130 bytes starting at an arbitrary heap address touch 3 or 4 cache lines.
        let buf = vec![0u8; 256];
        h.persist_range(buf.as_ptr(), 130, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert!(snap.pwbs >= 3 && snap.pwbs <= 4, "got {} pwbs", snap.pwbs);
        assert_eq!(snap.pfences, 1);
    }

    #[test]
    fn persist_range_is_a_noop_for_volatile_flag() {
        let db = dummy_db();
        let h = db.handle();
        let buf = [0u8; 64];
        h.persist_range(buf.as_ptr(), 64, PFlag::Volatile);
        h.persist_range(buf.as_ptr(), 0, PFlag::Persisted);
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 0);
        assert_eq!(db.stats_snapshot().unwrap().pfences, 0);
    }

    #[test]
    fn persist_object_covers_the_whole_object() {
        let db = dummy_db();
        let h = db.handle();
        #[repr(align(64))]
        #[allow(dead_code)]
        struct Big([u8; 256]);
        let big = Big([0; 256]);
        h.persist_object(&big, PFlag::Persisted);
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 4);
    }
}
