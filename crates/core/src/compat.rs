//! Compatibility shims for the pre-handle (ambient-thread) API.
//!
//! The explicit-handle redesign removed every `thread_local!` from the hot path:
//! persist-epoch state and EBR participation are owned by [`FlitHandle`] values,
//! never by OS threads. This module is the **one designated place** where
//! thread-keyed conveniences are allowed to live — CI greps the workspace and
//! rejects `thread_local!` anywhere outside this file, so any future ambient
//! state has to land here, visibly, with this module's caveats.
//!
//! The only shim currently needed is [`pin_current_thread`], a thin alias for
//! [`FlitDb::handle`] kept so examples and migration diffs read naturally
//! ("give the current thread a session"). It deliberately does **not** cache the
//! handle in a thread-local: a cached ambient handle is exactly the pattern the
//! redesign removed (it would resurrect the slot-leak and make interleavings
//! unsteppable). Creating a handle is cheap — no persistence events, one slot
//! pop — so per-scope creation is the intended usage.

use crate::db::{FlitDb, FlitHandle};
use crate::policy::Policy;

/// Register a session for the calling thread: a readable alias for
/// [`FlitDb::handle`] used by examples and by code migrating from the ambient
/// API. Create one per thread (or per scope) and thread it through operations:
///
/// ```
/// use flit::{compat, FlitDb};
/// use flit_pmem::SimNvram;
///
/// let db = FlitDb::flit_ht(SimNvram::default());
/// let h = compat::pin_current_thread(&db);
/// h.operation_completion();
/// ```
pub fn pin_current_thread<'db, P: Policy>(db: &'db FlitDb<P>) -> FlitHandle<'db, P> {
    db.handle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit_pmem::SimNvram;

    #[test]
    fn pin_current_thread_is_a_handle() {
        let db = FlitDb::flit_ht(SimNvram::for_counting());
        let h = pin_current_thread(&db);
        assert_eq!(h.db_id(), db.id());
        assert!(!h.is_dirty());
    }
}
