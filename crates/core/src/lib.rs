//! # FliT: Flush if Tagged — a library for simple and efficient persistent algorithms
//!
//! This crate is a from-scratch Rust reproduction of the FliT library from
//! *"FliT: A Library for Simple and Efficient Persistent Algorithms"*
//! (Wei, Ben-David, Friedman, Blelloch, Petrank — PPoPP 2022).
//!
//! FliT makes it easy to write **durably linearizable** code for byte-addressable
//! non-volatile memory (NVRAM). The programmer declares which words must be persisted
//! and marks the end of each operation; the library inserts the necessary write-back
//! (`pwb`) and fence (`pfence`) instructions — and, crucially, *elides* the read-side
//! write-backs that a naive transformation pays, by tracking pending stores with small
//! **flit-counters**.
//!
//! ## The P-V Interface (paper §3)
//!
//! Every instruction executed through the library is either a **p-instruction** (its
//! value must be persisted) or a **v-instruction** (it may remain volatile). The
//! library guarantees, for any mix of the two (Definition 1 of the paper):
//!
//! 1. **Volatile-memory behaviour.** Each instruction takes effect atomically at a
//!    linearization point inside its interval; loads return the most recently
//!    linearized store's value.
//! 2. **Store dependencies.** A thread depends on its own linearized p-stores.
//! 3. **Load dependencies.** A p-load on location ℓ makes the thread depend on every
//!    p-store to ℓ linearized before it.
//! 4. **Persisting dependencies.** Before a thread's *shared* store linearizes, and
//!    before it completes an operation ([`FlitHandle::operation_completion`]), all its
//!    dependencies are persisted.
//!
//! Making **every** load and store a p-instruction turns any linearizable data
//! structure into a durably linearizable one (Theorem 3.1) — that is the *automatic*
//! mode. Carefully chosen v-instructions (e.g. the NVTraverse read-only traversal
//! phase) recover the performance of hand-optimised persistent data structures while
//! staying within the same interface.
//!
//! ## The explicit-handle API: `FlitDb` and `FlitHandle`
//!
//! The P-V Interface is stated per *thread*: which fences a thread may elide and
//! which flushes it may dedup depend on that thread's persistence state. This
//! library makes the thread explicit instead of ambient:
//!
//! * [`FlitDb`] is the facade owning everything shared — the policy (scheme +
//!   backend), the EBR collector, the arena registry with its recovery-root
//!   tables. `FlitDb::create` builds a heap-backed database; [`FlitDb::open`]
//!   maps an existing file-backed pool and runs the validate → adopt →
//!   recover → GC pipeline (returning an [`OpenReport`]);
//!   [`FlitDb::recover`] surveys a crash image.
//! * [`FlitHandle`] is a per-logical-thread session — persist-epoch state, EBR
//!   participation, backend access — and **every operation takes one**:
//!   `map.insert(&h, k, v)`, `w.store(&h, v, flag)`,
//!   [`FlitHandle::operation_completion`].
//!
//! There is no `thread_local!` anywhere on the hot path (CI enforces it): a
//! handle is a `Send` value, so a controlled scheduler can own N handles and
//! interleave them deterministically on one OS thread — the mechanism behind
//! `flit-crashtest`'s round-robin sweeps. See [`db`] for the migration table.
//!
//! ## Persist-epoch elision
//!
//! Condition 4 only obliges a fence when the handle actually *has* unpersisted
//! dependencies. The hot path therefore issues its fences (the leading fence of
//! every shared store, the [`FlitHandle::operation_completion`] fence) through
//! the handle session's `pfence_if_dirty`, which skips the fence whenever the
//! handle has issued zero `pwb`s since its previous fence — an exact
//! marker for "no unpersisted dependencies": every dependency is acquired either
//! by a p-load of a *tagged* word (which flushes, dirtying the handle) or of an
//! *untagged* word (whose value the writer persisted before untagging). Duplicate
//! read-side flushes within one epoch are likewise elided for the FliT schemes
//! (never for the plain baseline). See `flit_pmem::epoch` for the model, the
//! soundness argument and the `ElisionMode::Disabled` escape hatch that restores
//! the paper-literal instruction stream.
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`db`] | the facade: [`FlitDb`], [`FlitHandle`], [`DbRecovery`] |
//! | [`pflag`] | [`PFlag`] (p- vs v-instruction) and [`Visibility`] (shared vs private) |
//! | [`word`] | [`PWord`]: types that fit in one persisted machine word |
//! | [`scheme`] | flit-counter placements: [`PlainScheme`], [`AdjacentScheme`], [`HashedScheme`], [`CacheLineScheme`] |
//! | [`policy`] | the [`Policy`] / [`PersistWord`] abstraction data structures are generic over |
//! | [`flit_atomic`] | [`FlitAtomic`] — Algorithm 4 — and [`FlitPolicy`] / [`PlainPolicy`] |
//! | [`link_persist`] | the link-and-persist comparator ([`LinkAndPersistPolicy`]) |
//! | [`no_persist`] | the non-persistent baseline ([`NoPersistPolicy`]) |
//! | [`compat`] | the one designated home for thread-keyed shims ([`compat::pin_current_thread`]) |
//!
//! ## Workspace layout
//!
//! This crate is the core of a larger workspace (see the repository `README.md`):
//!
//! | crate | contents |
//! |---|---|
//! | `flit` (this crate) | the P-V interface and its policy implementations |
//! | `flit-pmem` | hardware and simulated persistence substrates, crash tracking, reserved regions, the recording decorator |
//! | `flit-ebr` | epoch-based reclamation for the lock-free structures |
//! | `flit-alloc` | persistent arena allocator: aligned node slots, persisted header, recovery-root table |
//! | `flit-datastructs` | the paper's set/map structures (list, hash table, BST, skiplist), arena-allocated with image-only recovery |
//! | `flit-queues` | durable FIFO queues (Michael–Scott) with image-only crash recovery |
//! | `flit-workload` | map and queue workload generators, crash-test histories, the case dispatcher |
//! | `flit-crashtest` | deterministic crash-injection sweeps: crash at every absolute persistence event (construction included), recover image-only, verify prefix consistency |
//! | `flit-bench` | the `repro` figure-regeneration and `crashtest` sweep binaries, Criterion benches |
//!
//! ## Quick example
//!
//! ```
//! use flit::{FlitDb, FlitPolicy, HashedScheme, PFlag, PersistWord, Policy};
//! use flit_pmem::SimNvram;
//!
//! // Open a database over one variant: flit-HT (1MB counter table) on
//! // simulated NVRAM.
//! let db = FlitDb::flit_ht(SimNvram::default());
//!
//! // Register a session for this thread.
//! let h = db.handle();
//!
//! // Declare a persisted word (the Rust analogue of `persist<uint64_t> x;`).
//! let x = <FlitPolicy<HashedScheme, SimNvram> as Policy>::Word::<u64>::new(0);
//!
//! // A p-store followed by a p-load, then operation completion.
//! x.store(&h, 42, PFlag::Persisted);
//! assert_eq!(x.load(&h, PFlag::Persisted), 42);
//! h.operation_completion();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod compat;
pub mod db;
pub mod flit_atomic;
pub mod link_persist;
pub mod no_persist;
pub mod pflag;
pub mod policy;
pub mod scheme;
pub mod word;

pub use db::{
    ArenaRecovery, DbRecovery, FlitDb, FlitDbBuilder, FlitHandle, OpenReport, OpenTimings, Ticket,
};
pub use flit_atomic::{FlitAtomic, FlitPolicy, PlainPolicy};
pub use flit_obs::{FlightEvent, FlightEventKind, FlightRecorder, MetricsSnapshot, Registry};
pub use flit_pmem::{CommitMode, OpenError, PoolOptions};
pub use link_persist::{LinkAndPersistPolicy, LpAtomic, DIRTY_BIT};
pub use no_persist::{NoPersistPolicy, VolatileAtomic};
pub use pflag::{PFlag, Visibility};
pub use policy::{PersistWord, Policy};
pub use scheme::{
    human_bytes, AdjacentScheme, CacheLineScheme, CounterTable, HashedScheme, PlainScheme,
    TagScheme,
};
pub use word::PWord;

// Re-export the substrate so downstream users only need one dependency for the common
// case.
pub use flit_pmem as pmem;

/// Convenience constructors for the policy configurations used throughout the paper's
/// evaluation, all over the simulated-NVRAM backend.
pub mod presets {
    use flit_pmem::SimNvram;

    use crate::flit_atomic::{FlitPolicy, PlainPolicy};
    use crate::link_persist::LinkAndPersistPolicy;
    use crate::no_persist::NoPersistPolicy;
    use crate::scheme::{AdjacentScheme, CacheLineScheme, HashedScheme, PlainScheme};

    /// `plain`: durable transformation with no read-side flush elision.
    pub fn plain(backend: SimNvram) -> PlainPolicy<SimNvram> {
        FlitPolicy::new(PlainScheme, backend)
    }

    /// `flit-adjacent`: FliT with a counter next to every word.
    pub fn flit_adjacent(backend: SimNvram) -> FlitPolicy<AdjacentScheme, SimNvram> {
        FlitPolicy::new(AdjacentScheme, backend)
    }

    /// `flit-HT`: FliT with a hashed counter table of the paper's default size (1 MB).
    pub fn flit_ht(backend: SimNvram) -> FlitPolicy<HashedScheme, SimNvram> {
        FlitPolicy::new(HashedScheme::new_default(), backend)
    }

    /// `flit-HT` with an explicit table size in bytes (the Figure 5 sweep).
    pub fn flit_ht_sized(backend: SimNvram, bytes: usize) -> FlitPolicy<HashedScheme, SimNvram> {
        FlitPolicy::new(HashedScheme::with_bytes(bytes), backend)
    }

    /// `flit-cacheline`: one counter per cache line (paper §8 future work).
    pub fn flit_cacheline(backend: SimNvram) -> FlitPolicy<CacheLineScheme, SimNvram> {
        FlitPolicy::new(CacheLineScheme::new_default(), backend)
    }

    /// `link-and-persist`: the bit-tagging comparator.
    pub fn link_and_persist(backend: SimNvram) -> LinkAndPersistPolicy<SimNvram> {
        LinkAndPersistPolicy::new(backend)
    }

    /// The non-persistent baseline.
    pub fn no_persist() -> NoPersistPolicy {
        NoPersistPolicy::new()
    }
}

#[cfg(test)]
mod crate_tests {
    use super::*;
    use flit_pmem::{LatencyModel, SimNvram};

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    /// The headline behavioural difference between plain and FliT: on a read-heavy
    /// sequence, plain pays a pwb per p-load while FliT pays none.
    #[test]
    fn flit_elides_read_side_flushes_plain_does_not() {
        let plain = FlitDb::plain(backend());
        let flit = FlitDb::flit_ht(backend());
        let hp = plain.handle();
        let hf = flit.handle();

        let wp = <PlainPolicy<SimNvram> as Policy>::Word::<u64>::new(1);
        let wf = <FlitPolicy<HashedScheme, SimNvram> as Policy>::Word::<u64>::new(1);

        for _ in 0..1000 {
            let _ = wp.load(&hp, PFlag::Persisted);
            let _ = wf.load(&hf, PFlag::Persisted);
        }
        assert_eq!(plain.stats_snapshot().unwrap().pwbs, 1000);
        assert_eq!(flit.stats_snapshot().unwrap().pwbs, 0);
    }

    #[test]
    fn presets_have_distinct_labels() {
        let labels = [
            presets::plain(backend()).label(),
            presets::flit_adjacent(backend()).label(),
            presets::flit_ht(backend()).label(),
            presets::flit_cacheline(backend()).label(),
            presets::link_and_persist(backend()).label(),
            presets::no_persist().label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len(), "labels: {labels:?}");
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        let db = FlitDb::flit_ht(SimNvram::default());
        let h = db.handle();
        let x = <FlitPolicy<HashedScheme, SimNvram> as Policy>::Word::<u64>::new(0);
        x.store(&h, 42, PFlag::Persisted);
        assert_eq!(x.load(&h, PFlag::Persisted), 42);
        h.operation_completion();
    }
}
