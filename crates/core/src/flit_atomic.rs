//! The FliT algorithm itself: [`FlitAtomic`] implements Algorithm 4 of the paper for a
//! single persisted word, and [`FlitPolicy`] packages a tag scheme with a backend so
//! data structures can be instantiated with any combination.
//!
//! A quick recap of Algorithm 4 (shared accesses; `X` is the word, `cnt` its
//! flit-counter):
//!
//! ```text
//! p-load(X):            val = X.load(); if cnt(X) > 0 { pwb(X) }; return val
//! p-store(X, v):        pfence(); cnt(X)+=1; X.store(v); pwb(X); pfence(); cnt(X)-=1
//! v-load(X):            X.load()
//! v-store(X, v):        pfence(); X.store(v)
//! operation_completion: pfence()
//! ```
//!
//! Private accesses skip the counter and the leading fence; a private p-store is just
//! `store; pwb; pfence`.
//!
//! The leading `pfence` of every shared store (persisted *or* volatile) is what
//! discharges Condition 4 of the P-V Interface: all values the thread previously
//! `pwb`-ed — which, by the load and store rules, include every dependency it has
//! accumulated — are durable before the new store can be observed by others.
//!
//! ## Handles and persist-epoch elision
//!
//! Every operation takes the calling thread's [`FlitHandle`]: the handle owns the
//! persist-epoch state, and all persistence instructions are issued through its
//! [`PmemSession`](flit_pmem::PmemSession) view so they are attributed to exactly
//! that handle. Algorithm 4 issues its fences *unconditionally*; this
//! implementation issues them through the session's
//! [`pfence_if_dirty`](PmemBackend::pfence_if_dirty), which skips the fence when
//! the handle has issued zero `pwb`s since its previous fence — in that state the
//! handle holds no unpersisted dependency, so the fence is a no-op by the P-V
//! Interface's own semantics (Condition 4 is vacuously discharged). Likewise a
//! tagged p-load re-flushing a word the handle already flushed, with the same
//! observed value, in its current epoch goes through
//! [`pwb_dedup`](PmemBackend::pwb_dedup) and is skipped (the plain baseline opts
//! out — see [`TagScheme::dedups_read_flushes`]). On read-mostly workloads this
//! removes nearly every fence of the hot path; `flit_pmem::epoch` documents the
//! model and its soundness boundary, and building the backend with
//! `ElisionMode::Disabled` restores the paper-literal stream.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use flit_pmem::PmemBackend;

use crate::db::FlitHandle;
use crate::pflag::PFlag;
use crate::policy::{PersistWord, Policy};
use crate::scheme::{PlainScheme, TagScheme};
use crate::word::PWord;

/// A persistence policy running the FliT algorithm with tag scheme `S` over backend
/// `B`. The paper's evaluated variants are type aliases of this:
/// [`PlainPolicy`], flit-adjacent (`FlitPolicy<AdjacentScheme, B>`) and flit-HT
/// (`FlitPolicy<HashedScheme, B>`).
#[derive(Debug, Clone)]
pub struct FlitPolicy<S: TagScheme, B: PmemBackend + Send + Sync + 'static> {
    scheme: S,
    backend: B,
}

/// The *plain* durable transformation (no tagging; every p-load flushes). This is the
/// baseline FliT is compared against throughout the evaluation.
pub type PlainPolicy<B> = FlitPolicy<PlainScheme, B>;

impl<S: TagScheme, B: PmemBackend + Send + Sync + 'static> FlitPolicy<S, B> {
    /// Create a policy from a tag scheme and a backend.
    pub fn new(scheme: S, backend: B) -> Self {
        Self { scheme, backend }
    }

    /// The tag scheme in use.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }
}

impl<S: TagScheme, B: PmemBackend + Send + Sync + 'static> Policy for FlitPolicy<S, B> {
    type Backend = B;
    type Word<T: PWord> = FlitAtomic<T, S, B>;

    #[inline]
    fn backend(&self) -> &B {
        &self.backend
    }

    fn label(&self) -> String {
        self.scheme.describe()
    }

    #[inline]
    fn defers_store_fence(&self) -> bool {
        self.scheme.defers_store_close()
    }

    #[inline]
    fn close_deferred_store(&self, addr: usize) {
        self.scheme.end_store_deferred(addr);
    }
}

/// One persisted word managed by the FliT algorithm.
///
/// The layout depends on the scheme: with [`AdjacentScheme`](crate::scheme::AdjacentScheme)
/// the word carries its own 8-bit counter (doubling its size after padding — the
/// effect discussed in paper §6.6 for skiplist nodes); with the table-based schemes the
/// per-word metadata is zero-sized and the layout is identical to a plain `AtomicU64`.
pub struct FlitAtomic<T: PWord, S: TagScheme, B: PmemBackend + Send + Sync + 'static> {
    repr: AtomicU64,
    tag: S::PerWord,
    #[allow(clippy::type_complexity)]
    _marker: PhantomData<fn() -> (T, S, B)>,
}

impl<T: PWord, S: TagScheme, B: PmemBackend + Send + Sync + 'static> FlitAtomic<T, S, B> {
    #[inline]
    fn word_addr(&self) -> usize {
        &self.repr as *const AtomicU64 as usize
    }

    #[inline]
    fn word_ptr(&self) -> *const u8 {
        &self.repr as *const AtomicU64 as *const u8
    }

    /// Read path of Algorithm 4 (lines 1-8). `observed` is the word value the load
    /// returned: it keys the duplicate-flush elision (a tagged word the handle
    /// already flushed with this exact value in its current persist epoch is
    /// already pending, so re-flushing it buys nothing).
    #[inline]
    fn flush_if_tagged(&self, h: &FlitHandle<'_, FlitPolicy<S, B>>, flag: PFlag, observed: u64) {
        let ctx = h.policy();
        if flag.is_persisted()
            && ctx.backend.is_persistent()
            && ctx.scheme.is_tagged(&self.tag, self.word_addr())
        {
            let pm = h.pmem();
            let flushed = if ctx.scheme.dedups_read_flushes() {
                pm.pwb_dedup(self.word_ptr(), observed)
            } else {
                // The plain baseline stays paper-literal (see
                // `TagScheme::dedups_read_flushes`).
                pm.pwb(self.word_ptr());
                true
            };
            if flushed {
                pm.note_read_side_pwb();
            }
        }
    }

    /// Write path of Algorithm 4 (lines 10-18), shared by store/CAS/exchange/FAA:
    /// the actual atomic update is passed in as `update`, which returns the value now
    /// present in the word (the new value for successful updates, the unchanged
    /// current value for failed CAS).
    #[inline]
    fn shared_update<R>(
        &self,
        h: &FlitHandle<'_, FlitPolicy<S, B>>,
        flag: PFlag,
        update: impl FnOnce() -> (R, u64),
    ) -> R {
        let ctx = h.policy();
        if !ctx.backend.is_persistent() {
            let (result, _now) = update();
            return result;
        }
        let pm = h.pmem();
        // Leading fence: every dependency this handle accumulated (all its prior
        // pwbs) must be durable before this store can linearize (Condition 4). A
        // *clean* handle has no outstanding pwbs — every dependency it holds was
        // persisted by an earlier fence (its own trailing fences, or the writer's
        // fence for untagged words it read) — so the fence is elided.
        pm.pfence_if_dirty();
        // The handle is clean now, so any untags it deferred under group commit
        // are backed by a committed fence and can be closed.
        h.close_deferred_stores();
        if flag.is_persisted() {
            let addr = self.word_addr();
            ctx.scheme.begin_store(&self.tag, addr);
            let (result, now) = update();
            pm.record_store(self.word_ptr(), now);
            pm.pwb(self.word_ptr());
            if h.defers_store_fence() {
                // Group commit: the trailing fence moves to the handle's next
                // fence point (the next update's leading fence, a batch drain,
                // or handle drop). Until then the word stays *tagged*, so
                // concurrent readers keep issuing the helping flush that covers
                // cross-thread dependencies (Condition 4); the untag is queued
                // on the handle and closed after that fence.
                h.defer_store_close(addr);
            } else {
                pm.pfence();
                ctx.scheme.end_store(&self.tag, addr);
            }
            result
        } else {
            let (result, now) = update();
            pm.record_store(self.word_ptr(), now);
            result
        }
    }
}

impl<T: PWord, S: TagScheme, B: PmemBackend + Send + Sync + 'static>
    PersistWord<T, FlitPolicy<S, B>> for FlitAtomic<T, S, B>
{
    fn new(val: T) -> Self {
        Self {
            repr: AtomicU64::new(val.to_word()),
            tag: Default::default(),
            _marker: PhantomData,
        }
    }

    #[inline]
    fn load(&self, h: &FlitHandle<'_, FlitPolicy<S, B>>, flag: PFlag) -> T {
        let val = self.repr.load(Ordering::SeqCst);
        self.flush_if_tagged(h, flag, val);
        T::from_word(val)
    }

    #[inline]
    fn store(&self, h: &FlitHandle<'_, FlitPolicy<S, B>>, val: T, flag: PFlag) {
        let word = val.to_word();
        self.shared_update(h, flag, || {
            self.repr.store(word, Ordering::SeqCst);
            ((), word)
        });
    }

    #[inline]
    fn compare_exchange(
        &self,
        h: &FlitHandle<'_, FlitPolicy<S, B>>,
        current: T,
        new: T,
        flag: PFlag,
    ) -> Result<T, T> {
        let cur = current.to_word();
        let new = new.to_word();
        self.shared_update(h, flag, || {
            match self
                .repr
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(prev) => (Ok(T::from_word(prev)), new),
                Err(actual) => (Err(T::from_word(actual)), actual),
            }
        })
    }

    #[inline]
    fn exchange(&self, h: &FlitHandle<'_, FlitPolicy<S, B>>, val: T, flag: PFlag) -> T {
        let word = val.to_word();
        self.shared_update(h, flag, || {
            (T::from_word(self.repr.swap(word, Ordering::SeqCst)), word)
        })
    }

    #[inline]
    fn fetch_add(&self, h: &FlitHandle<'_, FlitPolicy<S, B>>, delta: u64, flag: PFlag) -> T {
        self.shared_update(h, flag, || {
            let prev = self.repr.fetch_add(delta, Ordering::SeqCst);
            (T::from_word(prev), prev.wrapping_add(delta))
        })
    }

    #[inline]
    fn load_private(&self, _h: &FlitHandle<'_, FlitPolicy<S, B>>, _flag: PFlag) -> T {
        // A private location cannot have a pending p-store by another thread, so the
        // counter check and flush are unnecessary (paper §5).
        T::from_word(self.repr.load(Ordering::SeqCst))
    }

    #[inline]
    fn store_private(&self, h: &FlitHandle<'_, FlitPolicy<S, B>>, val: T, flag: PFlag) {
        let word = val.to_word();
        self.repr.store(word, Ordering::SeqCst);
        let ctx = h.policy();
        if !ctx.backend.is_persistent() {
            return;
        }
        let pm = h.pmem();
        pm.record_store(self.word_ptr(), word);
        if flag.is_persisted() {
            pm.pwb(self.word_ptr());
            pm.pfence();
        }
    }

    #[inline]
    fn load_direct(&self) -> T {
        T::from_word(self.repr.load(Ordering::Relaxed))
    }

    #[inline]
    fn store_direct(&self, val: T) {
        self.repr.store(val.to_word(), Ordering::Relaxed);
    }

    #[inline]
    fn addr(&self) -> usize {
        self.word_addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::FlitDb;
    use crate::scheme::{AdjacentScheme, CacheLineScheme, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};

    type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

    fn ht_db() -> FlitDb<HtPolicy> {
        FlitDb::create(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 16),
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ))
    }

    #[test]
    fn load_store_round_trip() {
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(5);
        assert_eq!(w.load(&h, PFlag::Persisted), 5);
        w.store(&h, 9, PFlag::Persisted);
        assert_eq!(w.load(&h, PFlag::Volatile), 9);
        assert_eq!(w.load_direct(), 9);
    }

    #[test]
    fn clean_handle_p_store_costs_one_pwb_and_one_trailing_pfence() {
        // With persist-epoch elision (the default), a clean handle's leading fence
        // would persist nothing and is skipped: only the trailing fence remains.
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(0);
        w.store(&h, 1, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 1);
        assert_eq!(snap.pfences, 1, "leading fence elided on a clean handle");
        assert_eq!(snap.elided_pfences, 1);
    }

    #[test]
    fn dirty_handle_p_store_still_pays_both_pfences() {
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(0);
        // Dirty the handle: an unfenced pwb (as a tagged p-load would leave behind).
        h.pmem().pwb(w.word_ptr());
        let before = db.stats_snapshot().unwrap();
        w.store(&h, 1, PFlag::Persisted);
        let delta = db.stats_snapshot().unwrap().delta_since(&before);
        assert_eq!(delta.pfences, 2, "dirty handle: leading fence must fire");
    }

    #[test]
    fn literal_mode_p_store_costs_two_pfences() {
        // ElisionMode::Disabled restores the paper's exact instruction stream.
        let db: FlitDb<HtPolicy> = FlitDb::create(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 16),
            SimNvram::builder()
                .latency(LatencyModel::none())
                .elision(flit_pmem::ElisionMode::Disabled)
                .build(),
        ));
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(0);
        w.store(&h, 1, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 1);
        assert_eq!(snap.pfences, 2);
        assert_eq!(snap.elided_pfences, 0);
    }

    #[test]
    fn clean_handle_v_store_costs_no_persistence_instructions() {
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(0);
        w.store(&h, 1, PFlag::Volatile);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 0);
        assert_eq!(snap.pfences, 0, "the v-store's only fence was a no-op");
        assert_eq!(snap.elided_pfences, 1);
    }

    #[test]
    fn dirty_handle_v_store_pays_the_leading_pfence() {
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(0);
        h.pmem().pwb(w.word_ptr());
        w.store(&h, 1, PFlag::Volatile);
        assert_eq!(db.stats_snapshot().unwrap().pfences, 1);
    }

    #[test]
    fn p_load_of_untagged_location_does_not_flush() {
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(3);
        for _ in 0..100 {
            assert_eq!(w.load(&h, PFlag::Persisted), 3);
        }
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 0);
    }

    #[test]
    fn p_load_of_tagged_location_flushes() {
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(3);
        // Tag the location by hand, as if a p-store were pending.
        db.policy().scheme().begin_store(&(), w.addr());
        let _ = w.load(&h, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 1);
        assert_eq!(snap.read_side_pwbs, 1);
        db.policy().scheme().end_store(&(), w.addr());
        // Once untagged, loads stop flushing.
        let _ = w.load(&h, PFlag::Persisted);
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 1);
    }

    #[test]
    fn repeated_tagged_loads_flush_once_per_epoch() {
        // A CAS-retry loop re-reading the same tagged, unchanged word pays one pwb
        // per epoch instead of one per read.
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(3);
        db.policy().scheme().begin_store(&(), w.addr());
        for _ in 0..10 {
            let _ = w.load(&h, PFlag::Persisted);
        }
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 1, "nine duplicate flushes deduped");
        assert_eq!(snap.elided_pwbs, 9);
        assert_eq!(snap.read_side_pwbs, 1, "only real flushes are read-side");
        // A fence closes the epoch; the next tagged load flushes again.
        h.pmem().pfence();
        let _ = w.load(&h, PFlag::Persisted);
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 2);
        db.policy().scheme().end_store(&(), w.addr());
    }

    #[test]
    fn plain_policy_flushes_on_every_p_load() {
        let db: FlitDb<PlainPolicy<SimNvram>> = FlitDb::create(FlitPolicy::new(
            PlainScheme,
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ));
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(3);
        for _ in 0..10 {
            let _ = w.load(&h, PFlag::Persisted);
        }
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 10);
        // ...but never on v-loads.
        for _ in 0..10 {
            let _ = w.load(&h, PFlag::Volatile);
        }
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 10);
    }

    #[test]
    fn cas_success_and_failure() {
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(10);
        assert_eq!(w.compare_exchange(&h, 10, 20, PFlag::Persisted), Ok(10));
        assert_eq!(w.compare_exchange(&h, 10, 30, PFlag::Persisted), Err(20));
        assert_eq!(w.load(&h, PFlag::Volatile), 20);
    }

    #[test]
    fn exchange_and_fetch_add() {
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(100);
        assert_eq!(w.exchange(&h, 200, PFlag::Persisted), 100);
        assert_eq!(w.fetch_add(&h, 5, PFlag::Persisted), 200);
        assert_eq!(w.load(&h, PFlag::Persisted), 205);
    }

    #[test]
    fn counter_returns_to_zero_after_every_store() {
        // Lemma 5.1: the flit-counter balance of a completed p-store is zero.
        let scheme = HashedScheme::with_bytes(1 << 12);
        let db = FlitDb::create(FlitPolicy::new(
            scheme.clone(),
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ));
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(0);
        for i in 0..100 {
            w.store(&h, i, PFlag::Persisted);
            let _ = w.compare_exchange(&h, i, i + 1, PFlag::Persisted);
        }
        assert_eq!(scheme.table().tagged_count(), 0);
    }

    #[test]
    fn pointers_can_be_stored() {
        let db = ht_db();
        let h = db.handle();
        let boxed = Box::into_raw(Box::new(77u64));
        let w: FlitAtomic<*mut u64, _, _> = FlitAtomic::new(std::ptr::null_mut());
        w.store(&h, boxed, PFlag::Persisted);
        let back = w.load(&h, PFlag::Persisted);
        assert_eq!(back, boxed);
        unsafe { drop(Box::from_raw(back)) };
    }

    #[test]
    fn private_accesses_skip_the_counter_and_leading_fence() {
        let db = ht_db();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(0);
        w.store_private(&h, 42, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 1);
        assert_eq!(snap.pfences, 1, "private p-store has no leading fence");
        assert_eq!(w.load_private(&h, PFlag::Persisted), 42);
        assert_eq!(snap.read_side_pwbs, 0);
    }

    #[test]
    fn adjacent_scheme_embeds_the_counter() {
        let db = FlitDb::create(FlitPolicy::new(
            AdjacentScheme,
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ));
        let h = db.handle();
        let w: FlitAtomic<u64, AdjacentScheme, SimNvram> = FlitAtomic::new(1);
        w.store(&h, 2, PFlag::Persisted);
        assert_eq!(w.load(&h, PFlag::Persisted), 2);
        // Layout check backing the paper's §6.6 discussion: the adjacent variant makes
        // the word bigger than a bare AtomicU64, the table variants do not.
        assert!(std::mem::size_of::<FlitAtomic<u64, AdjacentScheme, SimNvram>>() > 8);
        assert_eq!(
            std::mem::size_of::<FlitAtomic<u64, HashedScheme, SimNvram>>(),
            8
        );
        assert_eq!(
            std::mem::size_of::<FlitAtomic<u64, PlainScheme, SimNvram>>(),
            8
        );
    }

    #[test]
    fn cache_line_scheme_works_end_to_end() {
        let db = FlitDb::create(FlitPolicy::new(
            CacheLineScheme::with_bytes(1 << 12),
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ));
        let h = db.handle();
        let w: FlitAtomic<u64, CacheLineScheme, SimNvram> = FlitAtomic::new(0);
        w.store(&h, 5, PFlag::Persisted);
        assert_eq!(w.load(&h, PFlag::Persisted), 5);
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 1);
    }

    #[test]
    fn stores_feed_the_persistence_tracker() {
        let backend = SimNvram::for_crash_testing();
        let db = FlitDb::create(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 12),
            backend.clone(),
        ));
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(0);
        w.store(&h, 11, PFlag::Persisted);
        // A completed p-store must already be durable.
        assert_eq!(
            backend.tracker().unwrap().persisted_value(w.addr()),
            Some(11)
        );
        w.store(&h, 12, PFlag::Volatile);
        // A v-store is visible in volatile memory but not persisted.
        assert_eq!(
            backend.tracker().unwrap().volatile_value(w.addr()),
            Some(12)
        );
        assert_eq!(
            backend.tracker().unwrap().persisted_value(w.addr()),
            Some(11)
        );
    }

    #[test]
    fn batched_commit_defers_the_trailing_fence_and_the_untag() {
        let scheme = HashedScheme::with_bytes(1 << 12);
        let backend = SimNvram::for_crash_testing();
        let db = FlitDb::builder(FlitPolicy::new(scheme.clone(), backend.clone()))
            .commit_mode(flit_pmem::CommitMode::Batched(8))
            .build();
        let h = db.handle();
        let w: FlitAtomic<u64, _, _> = FlitAtomic::new(0);
        w.store(&h, 11, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 1);
        assert_eq!(
            snap.pfences, 0,
            "leading fence elided (clean handle), trailing fence deferred"
        );
        // The write-back is pending but uncommitted — the store is NOT yet
        // durable — and the word stays tagged so readers keep helping.
        assert_eq!(backend.tracker().unwrap().persisted_value(w.addr()), None);
        assert_eq!(scheme.table().tagged_count(), 1);
        h.operation_completion();
        let ticket = h.flush_async();
        assert!(db.is_durable(ticket));
        assert_eq!(
            backend.tracker().unwrap().persisted_value(w.addr()),
            Some(11)
        );
        assert_eq!(
            scheme.table().tagged_count(),
            0,
            "the drain fence closes the deferred untag"
        );
        assert_eq!(db.stats_snapshot().unwrap().pfences, 1);
    }

    #[test]
    fn batched_commit_keeps_the_inline_fence_under_the_adjacent_scheme() {
        // The adjacent scheme embeds the counter in the word, which may be
        // reclaimed before a deferred close: batched commit must not defer.
        let db = FlitDb::builder(FlitPolicy::new(
            AdjacentScheme,
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ))
        .commit_mode(flit_pmem::CommitMode::Batched(8))
        .build();
        let h = db.handle();
        let w: FlitAtomic<u64, AdjacentScheme, SimNvram> = FlitAtomic::new(0);
        w.store(&h, 1, PFlag::Persisted);
        assert_eq!(
            db.stats_snapshot().unwrap().pfences,
            1,
            "trailing fence inline"
        );
        assert!(!db.policy().defers_store_fence());
    }

    #[test]
    fn concurrent_counter_discipline() {
        let scheme = HashedScheme::with_bytes(1 << 12);
        let db = FlitDb::create(FlitPolicy::new(
            scheme.clone(),
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ));
        let w = std::sync::Arc::new(FlitAtomic::<u64, HashedScheme, SimNvram>::new(0));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let db = &db;
                let w = std::sync::Arc::clone(&w);
                s.spawn(move || {
                    let h = db.handle();
                    for i in 0..1000u64 {
                        w.fetch_add(&h, 1, PFlag::Persisted);
                        let _ = w.load(&h, PFlag::Persisted);
                        let _ = w.compare_exchange(&h, t * i, i, PFlag::Persisted);
                    }
                });
            }
        });
        assert_eq!(scheme.table().tagged_count(), 0);
        assert!(w.load_direct() >= 4000);
    }
}
