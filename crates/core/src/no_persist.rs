//! The non-persistent baseline policy.
//!
//! Every data structure in the evaluation is also run in its original, non-durable
//! form (the grey dotted line in the paper's plots): no `pwb`, no `pfence`, no
//! tagging — just the underlying atomic instruction. [`NoPersistPolicy`] provides that
//! baseline through the same [`Policy`] interface so the identical data-structure code
//! can be measured with and without persistence. `PERSISTENT = false` short-circuits
//! the handle-level helpers (`operation_completion`, `persist_range`) at compile
//! time, so the baseline pays nothing for the shared interface.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use flit_pmem::NullPmem;

use crate::db::FlitHandle;
use crate::pflag::PFlag;
use crate::policy::{PersistWord, Policy};
use crate::word::PWord;

/// Policy with no persistence whatsoever (the non-persistent baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPersistPolicy {
    backend: NullPmem,
}

impl NoPersistPolicy {
    /// Create the baseline policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for NoPersistPolicy {
    type Backend = NullPmem;
    type Word<T: PWord> = VolatileAtomic<T>;
    const PERSISTENT: bool = false;

    #[inline]
    fn backend(&self) -> &NullPmem {
        &self.backend
    }

    fn label(&self) -> String {
        "non-persistent".to_string()
    }
}

/// A plain atomic word: ignores `pflag` entirely.
pub struct VolatileAtomic<T: PWord> {
    repr: AtomicU64,
    _marker: PhantomData<fn() -> T>,
}

impl<T: PWord> PersistWord<T, NoPersistPolicy> for VolatileAtomic<T> {
    fn new(val: T) -> Self {
        Self {
            repr: AtomicU64::new(val.to_word()),
            _marker: PhantomData,
        }
    }

    #[inline]
    fn load(&self, _h: &FlitHandle<'_, NoPersistPolicy>, _flag: PFlag) -> T {
        T::from_word(self.repr.load(Ordering::SeqCst))
    }

    #[inline]
    fn store(&self, _h: &FlitHandle<'_, NoPersistPolicy>, val: T, _flag: PFlag) {
        self.repr.store(val.to_word(), Ordering::SeqCst);
    }

    #[inline]
    fn compare_exchange(
        &self,
        _h: &FlitHandle<'_, NoPersistPolicy>,
        current: T,
        new: T,
        _flag: PFlag,
    ) -> Result<T, T> {
        self.repr
            .compare_exchange(
                current.to_word(),
                new.to_word(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .map(T::from_word)
            .map_err(T::from_word)
    }

    #[inline]
    fn exchange(&self, _h: &FlitHandle<'_, NoPersistPolicy>, val: T, _flag: PFlag) -> T {
        T::from_word(self.repr.swap(val.to_word(), Ordering::SeqCst))
    }

    #[inline]
    fn fetch_add(&self, _h: &FlitHandle<'_, NoPersistPolicy>, delta: u64, _flag: PFlag) -> T {
        T::from_word(self.repr.fetch_add(delta, Ordering::SeqCst))
    }

    #[inline]
    fn load_private(&self, h: &FlitHandle<'_, NoPersistPolicy>, flag: PFlag) -> T {
        self.load(h, flag)
    }

    #[inline]
    fn store_private(&self, h: &FlitHandle<'_, NoPersistPolicy>, val: T, flag: PFlag) {
        self.store(h, val, flag)
    }

    #[inline]
    fn load_direct(&self) -> T {
        T::from_word(self.repr.load(Ordering::Relaxed))
    }

    #[inline]
    fn store_direct(&self, val: T) {
        self.repr.store(val.to_word(), Ordering::Relaxed);
    }

    #[inline]
    fn addr(&self) -> usize {
        &self.repr as *const AtomicU64 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::FlitDb;

    #[test]
    fn basic_operations() {
        let db = FlitDb::create(NoPersistPolicy::new());
        let h = db.handle();
        let w: VolatileAtomic<u64> = VolatileAtomic::new(1);
        assert_eq!(w.load(&h, PFlag::Persisted), 1);
        w.store(&h, 2, PFlag::Persisted);
        assert_eq!(w.compare_exchange(&h, 2, 3, PFlag::Persisted), Ok(2));
        assert_eq!(w.exchange(&h, 4, PFlag::Persisted), 3);
        assert_eq!(w.fetch_add(&h, 6, PFlag::Persisted), 4);
        assert_eq!(w.load_direct(), 10);
    }

    #[test]
    fn no_persistence_side_effects() {
        let db = FlitDb::create(NoPersistPolicy::new());
        let h = db.handle();
        const { assert!(!NoPersistPolicy::PERSISTENT) };
        assert!(db.stats_snapshot().is_none());
        h.operation_completion();
        let w: VolatileAtomic<u64> = VolatileAtomic::new(0);
        h.persist_object(&w, PFlag::Persisted);
        assert_eq!(db.label(), "non-persistent");
        assert!(!h.is_dirty());
    }

    #[test]
    fn word_is_exactly_eight_bytes() {
        assert_eq!(std::mem::size_of::<VolatileAtomic<u64>>(), 8);
        assert_eq!(std::mem::size_of::<VolatileAtomic<*mut u64>>(), 8);
    }
}
