//! The [`PWord`] trait: types that can live inside a `persist<T>` word.
//!
//! The FliT algorithm operates on individual machine words (the paper's
//! flit-instructions wrap single loads, stores, CAS, FAA and exchange on one memory
//! word). This trait captures "fits losslessly in a `u64`", which is what the
//! underlying `AtomicU64` representation requires.

/// A value representable as a single 64-bit machine word.
///
/// Note that raw pointers implement this trait even though they are not `Send`/`Sync`:
/// the persistence cells store only the `u64` representation, and it is the *data
/// structure* built on top that carries the safety argument for sharing pointers
/// across threads (as is conventional for lock-free structures).
///
/// # Safety-adjacent contract
/// `from_word(to_word(x)) == x` must hold for every value `x`; the conversion must be
/// a pure bijection onto the used subset of `u64`. All implementations below are
/// simple casts.
pub trait PWord: Copy + 'static {
    /// Convert to the canonical 64-bit representation.
    fn to_word(self) -> u64;
    /// Convert back from the canonical 64-bit representation.
    fn from_word(word: u64) -> Self;
}

impl PWord for u64 {
    #[inline]
    fn to_word(self) -> u64 {
        self
    }
    #[inline]
    fn from_word(word: u64) -> Self {
        word
    }
}

impl PWord for usize {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(word: u64) -> Self {
        word as usize
    }
}

impl PWord for i64 {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(word: u64) -> Self {
        word as i64
    }
}

impl PWord for u32 {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(word: u64) -> Self {
        word as u32
    }
}

impl PWord for bool {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(word: u64) -> Self {
        word != 0
    }
}

impl<T: 'static> PWord for *mut T {
    #[inline]
    fn to_word(self) -> u64 {
        self as usize as u64
    }
    #[inline]
    fn from_word(word: u64) -> Self {
        word as usize as *mut T
    }
}

impl<T: 'static> PWord for *const T {
    #[inline]
    fn to_word(self) -> u64 {
        self as usize as u64
    }
    #[inline]
    fn from_word(word: u64) -> Self {
        word as usize as *const T
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: PWord + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_word(v.to_word()), v);
    }

    #[test]
    fn integers_round_trip() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(-1i64);
        round_trip(i64::MIN);
        round_trip(u32::MAX);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn pointers_round_trip() {
        let x = Box::into_raw(Box::new(123u32));
        round_trip(x);
        round_trip(x as *const u32);
        round_trip(std::ptr::null_mut::<u64>());
        unsafe { drop(Box::from_raw(x)) };
    }
}
