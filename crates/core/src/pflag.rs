//! The per-instruction persistence flag (`pflag`) of the FliT interface.
//!
//! Every flit-instruction takes, besides the arguments of the underlying memory
//! instruction, a flag saying whether it is a *p-instruction* (its value must be
//! persisted, and it participates in the dependency tracking of the P-V Interface) or
//! a *v-instruction* (its persistence has been reasoned away by the algorithm
//! designer).

/// Whether a flit-instruction is persisted (`p-`) or volatile (`v-`).
///
/// Mirrors the `pflag` boolean of the paper's interface (Figure 1) and the
/// `flush_option::persisted` / `flush_option::volatile` defaults of the C++ syntax
/// (Algorithm 2 / Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PFlag {
    /// A p-instruction: its effect must reach persistent memory according to the P-V
    /// Interface conditions. This is the default, matching the paper's "automatic"
    /// transformation in which *every* instruction is a p-instruction.
    #[default]
    Persisted,
    /// A v-instruction: the library may skip all persistence work for it.
    Volatile,
}

impl PFlag {
    /// `true` for [`PFlag::Persisted`].
    #[inline]
    pub const fn is_persisted(self) -> bool {
        matches!(self, PFlag::Persisted)
    }

    /// `true` for [`PFlag::Volatile`].
    #[inline]
    pub const fn is_volatile(self) -> bool {
        matches!(self, PFlag::Volatile)
    }

    /// Convert from the boolean convention of the paper's pseudocode
    /// (`true` = persisted).
    #[inline]
    pub const fn from_bool(persisted: bool) -> Self {
        if persisted {
            PFlag::Persisted
        } else {
            PFlag::Volatile
        }
    }
}

impl From<bool> for PFlag {
    fn from(persisted: bool) -> Self {
        PFlag::from_bool(persisted)
    }
}

/// Whether the memory location being accessed is *shared* (reachable by other
/// threads) or *private* (exclusively owned by the calling thread), following the
/// model of paper §2.1.
///
/// Private flit-instructions admit a cheaper implementation (paper §5): they skip the
/// flit-counter entirely and p-stores skip the leading `pfence`, because no concurrent
/// flit-instruction can observe an intermediate state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Visibility {
    /// The location may be accessed concurrently by other threads.
    #[default]
    Shared,
    /// The location is exclusively owned by the calling thread (e.g. a freshly
    /// allocated node that has not yet been published).
    Private,
}

impl Visibility {
    /// `true` for [`Visibility::Shared`].
    #[inline]
    pub const fn is_shared(self) -> bool {
        matches!(self, Visibility::Shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_automatic_transformation() {
        assert_eq!(PFlag::default(), PFlag::Persisted);
        assert_eq!(Visibility::default(), Visibility::Shared);
    }

    #[test]
    fn bool_conversion() {
        assert_eq!(PFlag::from(true), PFlag::Persisted);
        assert_eq!(PFlag::from(false), PFlag::Volatile);
        assert!(PFlag::Persisted.is_persisted());
        assert!(!PFlag::Persisted.is_volatile());
        assert!(PFlag::Volatile.is_volatile());
    }

    #[test]
    fn visibility_predicates() {
        assert!(Visibility::Shared.is_shared());
        assert!(!Visibility::Private.is_shared());
    }
}
