//! The *link-and-persist* comparator (David et al., USENIX ATC'18).
//!
//! Link-and-persist avoids read-side flushes the same way FliT does — by marking
//! locations with a pending un-persisted store — but keeps the mark *inside the word
//! itself*, as a single bit (here the most significant bit). A writer CASes in the new
//! value with the dirty bit set, flushes, fences, and then clears the bit with a second
//! store; a reader that observes the bit set flushes (and may help clear it).
//!
//! The paper highlights the technique's two limitations, which this implementation
//! shares deliberately because they are the point of the comparison (§2, §6.6):
//!
//! * it steals a bit from every word, so it cannot be used by algorithms that need all
//!   64 bits (e.g. the Natarajan–Mittal BST as benchmarked in the paper);
//! * all stores must go through CAS so that a concurrent writer cannot accidentally
//!   clear the dirty bit of a value that has not been persisted yet (plain stores and
//!   hardware FAA are emulated with CAS loops here).
//!
//! As everywhere in the workspace, every operation takes the calling thread's
//! [`FlitHandle`] and issues its instructions through the handle's session, so the
//! leading fence of `LpAtomic`'s dirty-write path elides per handle exactly as in the
//! FliT write path.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use flit_pmem::PmemBackend;

use crate::db::FlitHandle;
use crate::pflag::PFlag;
use crate::policy::{PersistWord, Policy};
use crate::word::PWord;

/// The dirty ("link") bit: set while a store's value may not yet be persisted.
pub const DIRTY_BIT: u64 = 1 << 63;

/// Persistence policy implementing link-and-persist over backend `B`.
#[derive(Debug, Clone)]
pub struct LinkAndPersistPolicy<B: PmemBackend + Send + Sync + 'static> {
    backend: B,
}

impl<B: PmemBackend + Send + Sync + 'static> LinkAndPersistPolicy<B> {
    /// Create a link-and-persist policy over the given backend.
    pub fn new(backend: B) -> Self {
        Self { backend }
    }
}

impl<B: PmemBackend + Send + Sync + 'static> Policy for LinkAndPersistPolicy<B> {
    type Backend = B;
    type Word<T: PWord> = LpAtomic<T, B>;

    #[inline]
    fn backend(&self) -> &B {
        &self.backend
    }

    fn label(&self) -> String {
        "link-and-persist".to_string()
    }
}

/// A persisted word whose dirty flag lives in bit 63 of the word itself.
///
/// Values stored through this cell must never use bit 63 (checked with a debug
/// assertion). Heap pointers and the integer keys/values used throughout the
/// evaluation satisfy this.
pub struct LpAtomic<T: PWord, B: PmemBackend + Send + Sync + 'static> {
    repr: AtomicU64,
    _marker: PhantomData<fn() -> (T, B)>,
}

impl<T: PWord, B: PmemBackend + Send + Sync + 'static> LpAtomic<T, B> {
    #[inline]
    fn word_ptr(&self) -> *const u8 {
        &self.repr as *const AtomicU64 as *const u8
    }

    /// Flush a value observed with the dirty bit set, then help clear the bit.
    ///
    /// Deliberately *not* routed through `pwb_dedup`: every flush in this policy is
    /// immediately followed by a fence (which empties the epoch's dedup set), so a
    /// dedup could never hit here. The only live persist-epoch elision in
    /// link-and-persist is the leading fence of [`dirty_write`](Self::dirty_write).
    #[inline]
    fn flush_and_clear(&self, h: &FlitHandle<'_, LinkAndPersistPolicy<B>>, observed: u64) {
        let pm = h.pmem();
        pm.pwb(self.word_ptr());
        pm.note_read_side_pwb();
        pm.pfence();
        // Helping is best-effort: if the writer (or another reader) already cleared
        // the bit — or the word changed entirely — there is nothing left to do.
        let _ = self.repr.compare_exchange(
            observed,
            observed & !DIRTY_BIT,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// The shared write path: CAS in `new | DIRTY`, persist, clear the bit.
    /// `expected` of `None` means "unconditional" (emulating write/exchange/FAA).
    /// Returns the previous clean value, or `Err(actual)` for a failed conditional CAS.
    fn dirty_write(
        &self,
        h: &FlitHandle<'_, LinkAndPersistPolicy<B>>,
        expected: Option<u64>,
        compute_new: impl Fn(u64) -> u64,
        flag: PFlag,
    ) -> Result<u64, u64> {
        let persistent = h.policy().backend.is_persistent();
        let pm = h.pmem();
        if persistent {
            // Dependencies must be durable before this store can linearize
            // (P-V Interface Condition 4), exactly as in the FliT write path — and
            // exactly as there, a clean handle has no unpersisted dependency and
            // skips the fence.
            pm.pfence_if_dirty();
        }
        loop {
            let cur = self.repr.load(Ordering::SeqCst);
            let cur_clean = cur & !DIRTY_BIT;
            if let Some(exp) = expected {
                if cur_clean != exp {
                    // Before reporting failure, make sure we are not failing against a
                    // value that is still in flight; persisting it keeps the
                    // link-and-persist invariant that observed values are durable.
                    if cur & DIRTY_BIT != 0 && persistent && flag.is_persisted() {
                        self.flush_and_clear(h, cur);
                    }
                    return Err(cur_clean);
                }
            }
            let new_clean = compute_new(cur_clean);
            debug_assert_eq!(
                new_clean & DIRTY_BIT,
                0,
                "link-and-persist values must not use bit 63"
            );
            let persist = persistent && flag.is_persisted();
            let new_word = if persist {
                new_clean | DIRTY_BIT
            } else {
                new_clean
            };
            match self
                .repr
                .compare_exchange(cur, new_word, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    pm.record_store(self.word_ptr(), new_clean);
                    if persist {
                        pm.pwb(self.word_ptr());
                        pm.pfence();
                        let _ = self.repr.compare_exchange(
                            new_word,
                            new_clean,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                    }
                    return Ok(cur_clean);
                }
                Err(_) => continue,
            }
        }
    }
}

impl<T: PWord, B: PmemBackend + Send + Sync + 'static> PersistWord<T, LinkAndPersistPolicy<B>>
    for LpAtomic<T, B>
{
    fn new(val: T) -> Self {
        debug_assert_eq!(val.to_word() & DIRTY_BIT, 0);
        Self {
            repr: AtomicU64::new(val.to_word()),
            _marker: PhantomData,
        }
    }

    #[inline]
    fn load(&self, h: &FlitHandle<'_, LinkAndPersistPolicy<B>>, flag: PFlag) -> T {
        let cur = self.repr.load(Ordering::SeqCst);
        if cur & DIRTY_BIT != 0 && flag.is_persisted() && h.policy().backend.is_persistent() {
            self.flush_and_clear(h, cur);
        }
        T::from_word(cur & !DIRTY_BIT)
    }

    #[inline]
    fn store(&self, h: &FlitHandle<'_, LinkAndPersistPolicy<B>>, val: T, flag: PFlag) {
        let _ = self.dirty_write(h, None, |_| val.to_word(), flag);
    }

    #[inline]
    fn compare_exchange(
        &self,
        h: &FlitHandle<'_, LinkAndPersistPolicy<B>>,
        current: T,
        new: T,
        flag: PFlag,
    ) -> Result<T, T> {
        self.dirty_write(h, Some(current.to_word()), |_| new.to_word(), flag)
            .map(T::from_word)
            .map_err(T::from_word)
    }

    #[inline]
    fn exchange(&self, h: &FlitHandle<'_, LinkAndPersistPolicy<B>>, val: T, flag: PFlag) -> T {
        T::from_word(
            self.dirty_write(h, None, |_| val.to_word(), flag)
                .expect("unconditional write cannot fail"),
        )
    }

    #[inline]
    fn fetch_add(&self, h: &FlitHandle<'_, LinkAndPersistPolicy<B>>, delta: u64, flag: PFlag) -> T {
        // The original technique cannot express hardware FAA (it needs CAS to protect
        // the dirty bit); emulate it with a CAS loop, which is exactly the restriction
        // the paper points out.
        T::from_word(
            self.dirty_write(h, None, |cur| cur.wrapping_add(delta) & !DIRTY_BIT, flag)
                .expect("unconditional update cannot fail"),
        )
    }

    #[inline]
    fn load_private(&self, _h: &FlitHandle<'_, LinkAndPersistPolicy<B>>, _flag: PFlag) -> T {
        T::from_word(self.repr.load(Ordering::SeqCst) & !DIRTY_BIT)
    }

    #[inline]
    fn store_private(&self, h: &FlitHandle<'_, LinkAndPersistPolicy<B>>, val: T, flag: PFlag) {
        debug_assert_eq!(val.to_word() & DIRTY_BIT, 0);
        self.repr.store(val.to_word(), Ordering::SeqCst);
        if !h.policy().backend.is_persistent() {
            return;
        }
        let pm = h.pmem();
        pm.record_store(self.word_ptr(), val.to_word());
        if flag.is_persisted() {
            pm.pwb(self.word_ptr());
            pm.pfence();
        }
    }

    #[inline]
    fn load_direct(&self) -> T {
        T::from_word(self.repr.load(Ordering::Relaxed) & !DIRTY_BIT)
    }

    #[inline]
    fn store_direct(&self, val: T) {
        self.repr.store(val.to_word(), Ordering::Relaxed);
    }

    #[inline]
    fn addr(&self) -> usize {
        &self.repr as *const AtomicU64 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::FlitDb;
    use flit_pmem::{LatencyModel, SimNvram};

    type Lp = LinkAndPersistPolicy<SimNvram>;

    fn lp_db() -> FlitDb<Lp> {
        FlitDb::create(LinkAndPersistPolicy::new(
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ))
    }

    #[test]
    fn round_trip_and_bit_is_cleared() {
        let db = lp_db();
        let h = db.handle();
        let w: LpAtomic<u64, SimNvram> = LpAtomic::new(1);
        w.store(&h, 7, PFlag::Persisted);
        assert_eq!(w.load(&h, PFlag::Persisted), 7);
        // After the store completes, the dirty bit must be clear again.
        assert_eq!(w.repr.load(Ordering::SeqCst) & DIRTY_BIT, 0);
    }

    #[test]
    fn p_store_costs_match_flit() {
        // Clean handle: the leading fence is elided here exactly as in the FliT
        // write path, leaving one pwb and the trailing fence.
        let db = lp_db();
        let h = db.handle();
        let w: LpAtomic<u64, SimNvram> = LpAtomic::new(0);
        w.store(&h, 1, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 1);
        assert_eq!(snap.pfences, 1);
        assert_eq!(snap.elided_pfences, 1);
    }

    #[test]
    fn literal_mode_p_store_costs_two_pfences() {
        let db = FlitDb::create(LinkAndPersistPolicy::new(
            SimNvram::builder()
                .latency(LatencyModel::none())
                .elision(flit_pmem::ElisionMode::Disabled)
                .build(),
        ));
        let h = db.handle();
        let w: LpAtomic<u64, SimNvram> = LpAtomic::new(0);
        w.store(&h, 1, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 1);
        assert_eq!(snap.pfences, 2);
    }

    #[test]
    fn reads_of_clean_words_never_flush() {
        let db = lp_db();
        let h = db.handle();
        let w: LpAtomic<u64, SimNvram> = LpAtomic::new(5);
        for _ in 0..50 {
            let _ = w.load(&h, PFlag::Persisted);
        }
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 0);
    }

    #[test]
    fn reader_helps_persist_a_dirty_word() {
        let db = lp_db();
        let h = db.handle();
        let w: LpAtomic<u64, SimNvram> = LpAtomic::new(0);
        // Simulate a writer that crashed (or was delayed) between its CAS and its
        // flush: the word is visible with the dirty bit still set.
        w.repr.store(9 | DIRTY_BIT, Ordering::SeqCst);
        assert_eq!(w.load(&h, PFlag::Persisted), 9);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 1, "the reader must flush on its behalf");
        assert_eq!(snap.read_side_pwbs, 1);
        assert_eq!(
            w.repr.load(Ordering::SeqCst) & DIRTY_BIT,
            0,
            "and clear the bit"
        );
    }

    #[test]
    fn volatile_loads_ignore_the_dirty_bit() {
        let db = lp_db();
        let h = db.handle();
        let w: LpAtomic<u64, SimNvram> = LpAtomic::new(0);
        w.repr.store(9 | DIRTY_BIT, Ordering::SeqCst);
        assert_eq!(w.load(&h, PFlag::Volatile), 9);
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 0);
        assert_ne!(w.repr.load(Ordering::SeqCst) & DIRTY_BIT, 0);
    }

    #[test]
    fn cas_success_failure_and_masking() {
        let db = lp_db();
        let h = db.handle();
        let w: LpAtomic<u64, SimNvram> = LpAtomic::new(10);
        assert_eq!(w.compare_exchange(&h, 10, 20, PFlag::Persisted), Ok(10));
        assert_eq!(w.compare_exchange(&h, 10, 30, PFlag::Persisted), Err(20));
        assert_eq!(w.load(&h, PFlag::Persisted), 20);
    }

    #[test]
    fn exchange_and_emulated_faa() {
        let db = lp_db();
        let h = db.handle();
        let w: LpAtomic<u64, SimNvram> = LpAtomic::new(100);
        assert_eq!(w.exchange(&h, 200, PFlag::Persisted), 100);
        assert_eq!(w.fetch_add(&h, 7, PFlag::Persisted), 200);
        assert_eq!(w.load(&h, PFlag::Persisted), 207);
    }

    #[test]
    fn pointer_values_survive() {
        let db = lp_db();
        let h = db.handle();
        let node = Box::into_raw(Box::new(3u64));
        let w: LpAtomic<*mut u64, SimNvram> = LpAtomic::new(std::ptr::null_mut());
        w.store(&h, node, PFlag::Persisted);
        assert_eq!(w.load(&h, PFlag::Persisted), node);
        unsafe { drop(Box::from_raw(node)) };
    }

    #[test]
    fn completed_p_store_is_durable_in_the_tracker() {
        let backend = SimNvram::for_crash_testing();
        let db = FlitDb::create(LinkAndPersistPolicy::new(backend.clone()));
        let h = db.handle();
        let w: LpAtomic<u64, SimNvram> = LpAtomic::new(0);
        w.store(&h, 33, PFlag::Persisted);
        assert_eq!(
            backend.tracker().unwrap().persisted_value(w.addr()),
            Some(33)
        );
    }

    #[test]
    fn concurrent_updates_keep_values_clean() {
        let db = lp_db();
        let w = std::sync::Arc::new(LpAtomic::<u64, SimNvram>::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let db = &db;
                let w = std::sync::Arc::clone(&w);
                s.spawn(move || {
                    let h = db.handle();
                    for _ in 0..500 {
                        w.fetch_add(&h, 1, PFlag::Persisted);
                        let _ = w.load(&h, PFlag::Persisted);
                    }
                });
            }
        });
        assert_eq!(w.load_direct(), 2000);
        assert_eq!(w.repr.load(Ordering::SeqCst) & DIRTY_BIT, 0);
    }
}
