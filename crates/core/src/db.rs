//! The explicit-handle facade: [`FlitDb`] and [`FlitHandle`].
//!
//! The paper's P-V Interface (§3, §5) is stated per *process*: which fences a
//! thread may elide and which flushes it may dedup depend on per-thread
//! persistence state. Earlier revisions of this workspace buried that state in
//! thread-locals (`flit_pmem::epoch`, `flit-ebr`'s slot cache), which made thread
//! identity ambient — nothing outside a thread could observe, step, or interleave
//! its persistence events, so deterministic multi-threaded crash sweeps were
//! structurally impossible. Memento's `PoolHandle`/`Handle` design shows the
//! alternative, adopted here:
//!
//! * **[`FlitDb`]** is the facade owning everything shared: the persistence
//!   [`Policy`] (scheme + backend), the EBR [`Collector`] all structures retire
//!   through, and the registry of [`Arena`]s (each with its persisted header and
//!   recovery-root table) the structures allocate from. `FlitDb::create` /
//!   [`FlitDb::open`] replace the scattered policy/arena/root plumbing;
//!   [`FlitDb::recover`] reports the durably-constructed roots in a
//!   [`CrashImage`].
//! * **[`FlitHandle`]** is an explicit per-logical-thread session: it bundles the
//!   [`PersistEpoch`] (fence-elision dirty count + flush-dedup set) and an EBR
//!   [`LocalHandle`] (participant slot), and exposes the backend as a
//!   [`PmemSession`] so every persistence instruction is attributed to exactly
//!   one handle. **Every data-structure operation takes `&FlitHandle`**
//!   (`map.insert(&h, k, v)`).
//!
//! Because a handle is a value — `Send`, not `Sync`, independent of the OS
//! thread — a controlled scheduler can own N handles and step them round-robin
//! on one OS thread at operation granularity, with each handle's fences and
//! flushes eliding independently, deterministically, and reproducibly. That is
//! exactly what `flit-crashtest`'s round-robin harness does.
//!
//! ## Handle lifecycle
//!
//! * [`FlitDb::handle`] registers a fresh handle (an EBR slot is claimed, no
//!   persistence events are generated).
//! * Operations pin through [`FlitHandle::pin`] and issue instructions through
//!   [`FlitHandle::pmem`].
//! * Dropping a handle: if the handle is *dirty* (it issued `pwb`s not yet
//!   fenced — possible only when the caller abandoned it mid-operation), a
//!   trailing `pfence` is issued so nothing the handle flushed is left
//!   un-committed; the EBR slot returns to the collector's free list for the
//!   next handle. Nothing else needs cleanup — the epoch state dies with the
//!   value (this replaces the old thread-keyed purge heuristics).
//!
//! ## Migration from the free-function style
//!
//! | old | new |
//! |---|---|
//! | `presets::flit_ht(backend)` + `Map::with_capacity(policy, n)` | [`FlitDb::flit_ht`]`(backend)` + `Map::with_capacity(&db, n)` |
//! | `map.insert(k, v)` | `map.insert(&h, k, v)` with `let h = db.handle();` |
//! | `policy.operation_completion()` | [`FlitHandle::operation_completion`] |
//! | `policy.persist_object(&node, flag)` | [`FlitHandle::persist_object`] |
//! | `structure.collector().pin()` | [`FlitHandle::pin`] |
//! | (implicit per-thread epoch) | [`FlitHandle::epoch`] |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use flit_alloc::{Arena, ArenaConfig, ImageHeader};
use flit_ebr::{Collector, Guard, LocalHandle};
use flit_pmem::{
    cache_line_of, CrashImage, ElisionMode, PersistEpoch, PmemBackend, PmemSession, StatsSnapshot,
    CACHE_LINE_SIZE,
};

use crate::pflag::PFlag;
use crate::policy::Policy;

static NEXT_DB_ID: AtomicU64 = AtomicU64::new(1);

struct DbInner<P: Policy> {
    policy: P,
    collector: Collector,
    arenas: Mutex<Vec<Arc<Arena>>>,
    id: u64,
    handles_created: AtomicU64,
}

/// The facade owning a database's shared state: policy (scheme + backend), the
/// EBR collector, and the arena registry. Cheap to clone (reference counted);
/// structures hold a clone, handles borrow one. See the module docs.
pub struct FlitDb<P: Policy> {
    inner: Arc<DbInner<P>>,
}

impl<P: Policy> Clone for FlitDb<P> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<P: Policy> std::fmt::Debug for FlitDb<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlitDb")
            .field("id", &self.inner.id)
            .field("policy", &self.inner.policy.label())
            .field("arenas", &self.inner.arenas.lock().unwrap().len())
            .field("handles_created", &self.inner.handles_created)
            .finish()
    }
}

impl<P: Policy> FlitDb<P> {
    /// Create a fresh database over `policy`: a new collector, no arenas yet.
    pub fn create(policy: P) -> Self {
        Self {
            inner: Arc::new(DbInner {
                policy,
                collector: Collector::new(),
                arenas: Mutex::new(Vec::new()),
                id: NEXT_DB_ID.fetch_add(1, Ordering::Relaxed),
                handles_created: AtomicU64::new(0),
            }),
        }
    }

    /// Open a database over `policy`.
    ///
    /// On the simulated substrate this is [`create`](Self::create) (regions are
    /// fresh reservations); the name marks the call sites that would re-map an
    /// existing DAX pool on a machine with real persistent memory.
    pub fn open(policy: P) -> Self {
        Self::create(policy)
    }

    /// The persistence policy of this database.
    #[inline]
    pub fn policy(&self) -> &P {
        &self.inner.policy
    }

    /// The backend of this database's policy.
    #[inline]
    pub fn backend(&self) -> &P::Backend {
        self.inner.policy.backend()
    }

    /// The EBR collector every structure of this database retires through.
    #[inline]
    pub fn collector(&self) -> &Collector {
        &self.inner.collector
    }

    /// Process-unique id of this database (handles carry it so mismatched
    /// handle/structure pairings can be debug-asserted).
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Human-readable policy label (e.g. `"flit-HT (1MB)"`).
    pub fn label(&self) -> String {
        self.inner.policy.label()
    }

    /// Snapshot of the backend's persistence-instruction counters, if it keeps
    /// any.
    pub fn stats_snapshot(&self) -> Option<StatsSnapshot> {
        self.inner.policy.stats_snapshot()
    }

    /// Register a new per-logical-thread session. Handles are cheap (no
    /// persistence events) and `Send`: create one per worker thread — or several
    /// on one thread for controlled interleaving.
    pub fn handle(&self) -> FlitHandle<'_, P> {
        let id = self.inner.handles_created.fetch_add(1, Ordering::Relaxed);
        FlitHandle {
            db: self,
            epoch: PersistEpoch::new(),
            elision: self.backend().elision_mode(),
            ebr: self.inner.collector.register(),
            id,
        }
    }

    /// Number of handles ever created on this database (diagnostic).
    pub fn handles_created(&self) -> u64 {
        self.inner.handles_created.load(Ordering::Relaxed)
    }

    /// Create (and register) an arena whose slots hold `slot_size` bytes,
    /// growing `chunk_slots` slots at a time. The persisted header is written
    /// through this database's backend.
    pub fn new_arena(&self, slot_size: usize, chunk_slots: usize) -> Arc<Arena> {
        let arena = Arc::new(Arena::new(self.backend(), slot_size, chunk_slots));
        self.inner.arenas.lock().unwrap().push(Arc::clone(&arena));
        arena
    }

    /// Create (and register) an arena sized for slots of type `T`.
    pub fn new_arena_for<T>(&self, chunk_slots: usize) -> Arc<Arena> {
        self.new_arena(Arena::slot_size_for::<T>(), chunk_slots)
    }

    /// Create (and register) an arena with an explicit [`ArenaConfig`] — the
    /// sized-to-shard-share construction path used by multi-arena systems such
    /// as `flit-server`.
    pub fn new_arena_cfg(&self, slot_size: usize, config: ArenaConfig) -> Arc<Arena> {
        self.new_arena(slot_size, config.slots_per_chunk)
    }

    /// Create (and register) an arena for slots of type `T` with an explicit
    /// [`ArenaConfig`].
    pub fn new_arena_for_cfg<T>(&self, config: ArenaConfig) -> Arc<Arena> {
        self.new_arena_for::<T>(config.slots_per_chunk)
    }

    /// Every arena created through this database, in creation order.
    pub fn arenas(&self) -> Vec<Arc<Arena>> {
        self.inner.arenas.lock().unwrap().clone()
    }

    /// Survey what `image` holds of this database: per arena, the persisted
    /// header and the durably-registered recovery roots. This is the
    /// type-agnostic half of recovery — each structure's
    /// `recover_in_image(arena, image)` rebuilds its abstract state from the
    /// roots reported here.
    pub fn recover(&self, image: &CrashImage) -> DbRecovery {
        DbRecovery {
            arenas: self
                .arenas()
                .iter()
                .map(|arena| ArenaRecovery {
                    header: arena.image_header(image),
                    durable_roots: arena.roots_in_image(image),
                })
                .collect(),
        }
    }
}

// ---- facade constructors -------------------------------------------------
//
// The paper's evaluated configurations, one constructor per variant: these
// replace the old free-function `presets::*` + hand-wired plumbing at call
// sites (`presets` remains for code that only needs the bare policy).

use flit_pmem::SimNvram;

use crate::flit_atomic::{FlitPolicy, PlainPolicy};
use crate::link_persist::LinkAndPersistPolicy;
use crate::no_persist::NoPersistPolicy;
use crate::scheme::{AdjacentScheme, CacheLineScheme, HashedScheme, PlainScheme};

impl FlitDb<PlainPolicy<SimNvram>> {
    /// `plain`: durable transformation with no read-side flush elision.
    pub fn plain(backend: SimNvram) -> Self {
        Self::create(FlitPolicy::new(PlainScheme, backend))
    }
}

impl FlitDb<FlitPolicy<AdjacentScheme, SimNvram>> {
    /// `flit-adjacent`: FliT with a counter next to every word.
    pub fn flit_adjacent(backend: SimNvram) -> Self {
        Self::create(FlitPolicy::new(AdjacentScheme, backend))
    }
}

impl FlitDb<FlitPolicy<HashedScheme, SimNvram>> {
    /// `flit-HT`: FliT with a hashed counter table of the paper's default size
    /// (1 MB).
    pub fn flit_ht(backend: SimNvram) -> Self {
        Self::create(FlitPolicy::new(HashedScheme::new_default(), backend))
    }

    /// `flit-HT` with an explicit table size in bytes (the Figure 5 sweep).
    pub fn flit_ht_sized(backend: SimNvram, bytes: usize) -> Self {
        Self::create(FlitPolicy::new(HashedScheme::with_bytes(bytes), backend))
    }
}

impl FlitDb<FlitPolicy<CacheLineScheme, SimNvram>> {
    /// `flit-cacheline`: one counter per cache line (paper §8 future work).
    pub fn flit_cacheline(backend: SimNvram) -> Self {
        Self::create(FlitPolicy::new(CacheLineScheme::new_default(), backend))
    }
}

impl FlitDb<LinkAndPersistPolicy<SimNvram>> {
    /// `link-and-persist`: the bit-tagging comparator.
    pub fn link_and_persist(backend: SimNvram) -> Self {
        Self::create(LinkAndPersistPolicy::new(backend))
    }
}

impl FlitDb<NoPersistPolicy> {
    /// The non-persistent baseline.
    pub fn no_persist() -> Self {
        Self::create(NoPersistPolicy::new())
    }
}

/// What [`FlitDb::recover`] reports: the durably-constructed state of each arena
/// in a crash image.
#[derive(Debug, Clone)]
pub struct DbRecovery {
    /// One entry per arena, in creation order.
    pub arenas: Vec<ArenaRecovery>,
}

impl DbRecovery {
    /// `true` when `key` is durably registered in any arena's root table.
    pub fn has_root(&self, key: u64) -> bool {
        self.arenas
            .iter()
            .any(|a| a.durable_roots.iter().any(|(k, _)| *k == key))
    }
}

/// The recoverable state of one arena as persisted in a crash image.
#[derive(Debug, Clone)]
pub struct ArenaRecovery {
    /// The arena's persisted header (always reachable, even mid-construction).
    pub header: ImageHeader,
    /// The durably-registered `(root key, slot base address)` pairs.
    pub durable_roots: Vec<(u64, usize)>,
}

/// An explicit per-logical-thread session on a [`FlitDb`]: the persist epoch
/// (fence/flush elision state), the EBR participant, and backend access. Every
/// data-structure operation takes `&FlitHandle`. See the module docs.
///
/// `Send` but `!Sync`: a handle may outlive (or migrate between) OS threads,
/// but represents exactly one logical thread at a time.
pub struct FlitHandle<'db, P: Policy> {
    db: &'db FlitDb<P>,
    epoch: PersistEpoch,
    elision: ElisionMode,
    ebr: LocalHandle,
    id: u64,
}

impl<'db, P: Policy> std::fmt::Debug for FlitHandle<'db, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlitHandle")
            .field("id", &self.id)
            .field("db", &self.db.id())
            .field("dirty", &!self.epoch.is_clean())
            .finish()
    }
}

impl<'db, P: Policy> FlitHandle<'db, P> {
    /// The database this handle belongs to.
    #[inline]
    pub fn db(&self) -> &'db FlitDb<P> {
        self.db
    }

    /// The database's policy (schemes consult it on the hot path).
    #[inline]
    pub fn policy(&self) -> &'db P {
        self.db.policy()
    }

    /// Id of this handle within its database (diagnostic).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Id of the owning database (structures debug-assert it matches theirs).
    #[inline]
    pub fn db_id(&self) -> u64 {
        self.db.id()
    }

    /// This handle's persist-epoch state (diagnostics and tests).
    #[inline]
    pub fn epoch(&self) -> &PersistEpoch {
        &self.epoch
    }

    /// `true` when this handle has issued `pwb`s not yet committed by a fence.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        !self.epoch.is_clean()
    }

    /// The backend as seen by *this handle*: a [`PmemSession`] that attributes
    /// every instruction to this handle's epoch and applies fence/flush elision
    /// accordingly. All persistence instructions of an operation must go through
    /// this view (raw [`FlitDb::backend`] calls would not be attributed).
    #[inline]
    pub fn pmem(&self) -> PmemSession<'_, P::Backend> {
        PmemSession::new(self.db.backend(), &self.epoch, self.elision)
    }

    /// Pin this handle's EBR participant: shared nodes may be dereferenced and
    /// retired only while the returned [`Guard`] is alive. Re-entrant per handle.
    #[inline]
    pub fn pin(&self) -> Guard<'_> {
        self.ebr.pin()
    }

    /// The paper's `persist::operation_completion()`: must be called at the end
    /// of every data-structure operation. Issues a `pfence` so that every
    /// dependency of the completed operation is persisted before the operation
    /// returns (P-V Interface, Condition 4).
    ///
    /// The fence goes through the session's
    /// [`pfence_if_dirty`](flit_pmem::PmemBackend::pfence_if_dirty): a handle
    /// that issued no `pwb` during the operation (e.g. a read-only operation
    /// over untagged words) holds no unpersisted dependency — every value it
    /// read was persisted by its writer's trailing fence before the word was
    /// untagged — so the completion fence is elided entirely.
    #[inline]
    pub fn operation_completion(&self) {
        if P::PERSISTENT {
            self.pmem().pfence_if_dirty();
        }
    }

    /// Flush `len` bytes starting at `start` (every cache line they touch) and
    /// fence, attributed to this handle.
    ///
    /// Used to persist freshly initialised objects before they are published by
    /// a shared p-store; a no-op when `flag` is volatile or the policy is
    /// non-persistent.
    pub fn persist_range(&self, start: *const u8, len: usize, flag: PFlag) {
        if !P::PERSISTENT || flag.is_volatile() || len == 0 {
            return;
        }
        let pm = self.pmem();
        let first = cache_line_of(start as usize);
        let last = cache_line_of(start as usize + len - 1);
        let mut line = first;
        loop {
            pm.pwb(line as *const u8);
            if line == last {
                break;
            }
            line += CACHE_LINE_SIZE;
        }
        pm.pfence();
    }

    /// Persist an entire object (all cache lines it occupies). Typically called
    /// on a freshly allocated node right before the compare-and-swap that
    /// publishes it.
    pub fn persist_object<T>(&self, obj: &T, flag: PFlag) {
        self.persist_range(obj as *const T as *const u8, std::mem::size_of::<T>(), flag);
    }
}

impl<'db, P: Policy> Drop for FlitHandle<'db, P> {
    fn drop(&mut self) {
        // A dirty handle holds pwbs no future fence of this logical thread will
        // ever commit (the thread is going away): issue the trailing fence now so
        // everything the handle flushed is durable. A clean handle (the normal
        // case — every completed operation ends with its completion fence) costs
        // nothing here. The EBR slot is returned by `LocalHandle`'s own drop.
        if P::PERSISTENT && !self.epoch.is_clean() {
            self.pmem().pfence();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit_atomic::FlitPolicy;
    use crate::policy::PersistWord;
    use crate::scheme::HashedScheme;
    use flit_pmem::{LatencyModel, SimNvram};

    type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

    fn db() -> FlitDb<HtPolicy> {
        FlitDb::create(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 16),
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ))
    }

    #[test]
    fn db_is_cloneable_and_shares_state() {
        let db = db();
        let clone = db.clone();
        assert_eq!(db.id(), clone.id());
        let _a = db.new_arena(64, 8);
        assert_eq!(clone.arenas().len(), 1);
    }

    #[test]
    fn handles_have_independent_epochs() {
        let db = db();
        let h1 = db.handle();
        let h2 = db.handle();
        assert_ne!(h1.id(), h2.id());
        let x = 1u64;
        h1.pmem().pwb(&x as *const u64 as *const u8);
        assert!(h1.is_dirty());
        assert!(!h2.is_dirty(), "h2 must not see h1's pwb");
        h2.operation_completion(); // clean handle: elided
        assert!(h1.is_dirty(), "h2's (elided) fence must not clean h1");
        h1.operation_completion(); // dirty handle: fences
        assert!(!h1.is_dirty());
        let stats = db.stats_snapshot().unwrap();
        assert_eq!(stats.pfences, 1);
        assert_eq!(stats.elided_pfences, 1);
    }

    #[test]
    fn dropping_a_dirty_handle_issues_the_trailing_fence() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::create(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 12),
            sim.clone(),
        ));
        let x = 0u64;
        let addr = &x as *const u64 as usize;
        {
            let h = db.handle();
            let pm = h.pmem();
            pm.record_store(addr as *const u8, 77);
            pm.pwb(addr as *const u8);
            assert!(h.is_dirty());
            // No fence: the value is flushed but not committed.
            assert_eq!(sim.tracker().unwrap().persisted_value(addr), None);
        } // drop: the trailing fence commits the pending flush
        assert_eq!(sim.tracker().unwrap().persisted_value(addr), Some(77));
    }

    #[test]
    fn dropping_a_clean_handle_fences_nothing() {
        let db = db();
        {
            let _h = db.handle();
        }
        assert_eq!(db.stats_snapshot().unwrap().pfences, 0);
    }

    #[test]
    fn handle_drop_returns_the_ebr_slot() {
        let db = db();
        for _ in 0..4 * flit_ebr::MAX_PARTICIPANTS {
            let h = db.handle();
            drop(h.pin());
        }
        assert_eq!(db.collector().participants(), 0);
    }

    #[test]
    fn persist_object_and_completion_go_through_the_handle() {
        let db = db();
        let h = db.handle();
        #[repr(align(64))]
        struct Big(#[allow(dead_code)] [u8; 128]);
        let big = Big([0; 128]);
        h.persist_object(&big, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 2);
        assert_eq!(snap.pfences, 1);
        assert!(!h.is_dirty(), "persist_object ends fenced");
        h.persist_range(std::ptr::null(), 0, PFlag::Persisted);
        h.persist_object(&big, PFlag::Volatile);
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 2, "no-ops stayed no-ops");
    }

    #[test]
    fn db_recover_reports_durable_roots() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::create(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 12),
            sim.clone(),
        ));
        let arena = db.new_arena(64, 8);
        let h = db.handle();
        let slot = arena.alloc(&h.pmem()) as usize;
        h.operation_completion();
        let before = db.recover(&sim.tracker().unwrap().crash_image());
        assert!(!before.has_root(flit_alloc::roots::LIST_HEAD));
        assert!(before.arenas[0].header.initialised);
        arena.register_root(&h.pmem(), flit_alloc::roots::LIST_HEAD, slot);
        let after = db.recover(&sim.tracker().unwrap().crash_image());
        assert!(after.has_root(flit_alloc::roots::LIST_HEAD));
        assert_eq!(after.arenas.len(), 1);
    }

    #[test]
    fn words_operate_through_a_handle() {
        let db = db();
        let h = db.handle();
        let w = <HtPolicy as Policy>::Word::<u64>::new(1);
        w.store(&h, 9, PFlag::Persisted);
        assert_eq!(w.load(&h, PFlag::Persisted), 9);
        h.operation_completion();
        assert_eq!(db.handles_created(), 1);
    }
}
