//! The explicit-handle facade: [`FlitDb`] and [`FlitHandle`].
//!
//! The paper's P-V Interface (§3, §5) is stated per *process*: which fences a
//! thread may elide and which flushes it may dedup depend on per-thread
//! persistence state. Earlier revisions of this workspace buried that state in
//! thread-locals (`flit_pmem::epoch`, `flit-ebr`'s slot cache), which made thread
//! identity ambient — nothing outside a thread could observe, step, or interleave
//! its persistence events, so deterministic multi-threaded crash sweeps were
//! structurally impossible. Memento's `PoolHandle`/`Handle` design shows the
//! alternative, adopted here:
//!
//! * **[`FlitDb`]** is the facade owning everything shared: the persistence
//!   [`Policy`] (scheme + backend), the EBR [`Collector`] all structures retire
//!   through, and the registry of [`Arena`]s (each with its persisted header and
//!   recovery-root table) the structures allocate from. `FlitDb::create` (or
//!   [`FlitDb::open`] on a file-backed pool) replaces the scattered
//!   policy/arena/root plumbing; [`FlitDb::recover`] reports the
//!   durably-constructed roots in a [`CrashImage`].
//! * **[`FlitHandle`]** is an explicit per-logical-thread session: it bundles the
//!   [`PersistEpoch`] (fence-elision dirty count + flush-dedup set) and an EBR
//!   [`LocalHandle`] (participant slot), and exposes the backend as a
//!   [`PmemSession`] so every persistence instruction is attributed to exactly
//!   one handle. **Every data-structure operation takes `&FlitHandle`**
//!   (`map.insert(&h, k, v)`).
//!
//! Because a handle is a value — `Send`, not `Sync`, independent of the OS
//! thread — a controlled scheduler can own N handles and step them round-robin
//! on one OS thread at operation granularity, with each handle's fences and
//! flushes eliding independently, deterministically, and reproducibly. That is
//! exactly what `flit-crashtest`'s round-robin harness does.
//!
//! ## Handle lifecycle
//!
//! * [`FlitDb::handle`] registers a fresh handle (an EBR slot is claimed, no
//!   persistence events are generated).
//! * Operations pin through [`FlitHandle::pin`] and issue instructions through
//!   [`FlitHandle::pmem`].
//! * Dropping a handle: if the handle is *dirty* (it issued `pwb`s not yet
//!   fenced — possible only when the caller abandoned it mid-operation), a
//!   trailing `pfence` is issued so nothing the handle flushed is left
//!   un-committed; the EBR slot returns to the collector's free list for the
//!   next handle. Nothing else needs cleanup — the epoch state dies with the
//!   value (this replaces the old thread-keyed purge heuristics).
//!
//! ## Durability modes: the watermark/ticket contract
//!
//! A database is built in one of two [`CommitMode`]s (chosen on the
//! [`builder`](FlitDb::builder), [`CommitMode::Immediate`] by default):
//!
//! * **Immediate** — the paper's contract: every
//!   [`operation_completion`](FlitHandle::operation_completion) fences, so an
//!   operation is durable before it returns.
//! * **Batched(k)** — group commit: `operation_completion` *enqueues a
//!   completion obligation* on the handle instead of fencing, and the handle
//!   drains its queue with **one `pfence` per batch** of up to `k` obligations
//!   — on batch overflow, on an explicit [`FlitHandle::flush_async`], and on
//!   handle drop. Draining *acknowledges* the batch: the db-wide
//!   [`durable watermark`](FlitDb::durable_watermark) (total acknowledged
//!   obligations) advances, and any [`Ticket`] covering those operations
//!   becomes durable ([`FlitDb::wait`] / [`FlitDb::is_durable`]).
//!
//! Under `Batched`, p-stores on tag schemes that keep their counter *outside*
//! the word (hashed, cache-line, plain) additionally defer the store's
//! trailing fence **and its untag** to the handle's next fence point: the word
//! stays tagged, so concurrent readers keep issuing the helping flush that
//! preserves the paper's Condition 4 across threads, and the leading fence of
//! the next update (or the batch drain) commits the deferred write-back. That
//! is where the fence amortisation comes from. The adjacent scheme embeds its
//! counter in the word itself — which may be reclaimed before a late close —
//! so it keeps the inline trailing fence even when batched and gains no
//! amortisation (see [`TagScheme::defers_store_close`](crate::TagScheme)).
//!
//! The batched crash contract is deliberately weaker and precisely stated:
//! after a crash, the recovered state is some consistent **prefix** of the
//! handle's completed operations that includes at least every *acknowledged*
//! operation (acknowledgment happens only after the batch fence, so an
//! acknowledged operation's write-backs are always in the image). Unacknowledged
//! operations may be lost wholesale — but never partially, and never out of
//! order. `flit-crashtest` sweeps exactly this window (and its broken
//! "acknowledge before the fence" control must fail). Because persistence
//! state is per-handle (the tracker commits only the fencing thread's pending
//! write-backs), only the owning handle's drain can advance its operations'
//! durability: `wait` *observes* acknowledgment from any thread, it cannot
//! force another handle's fence.
//!
//! ## Opening a real pool: validate → adopt → recover → GC
//!
//! A database can live on a **file-backed pool** (`flit_pmem::PoolFile`, an
//! `mmap`'d file with a superblock and an arena directory) instead of fresh
//! heap reservations. [`FlitDb::open`] — or the explicit
//! [`FlitDbBuilder::open_pool`] — takes a path and runs a four-stage pipeline,
//! every failure of which is a typed [`OpenError`], never a panic:
//!
//! 1. **Validate** — the superblock is read *through the file API* before
//!    anything is mapped: magic, version, recorded base address, bump cursor
//!    and arena count are all vetted, then the pool is re-mapped at the base
//!    address recorded when it was created (`MAP_FIXED_NOREPLACE`), so every
//!    absolute pointer persisted by the previous process is valid again. The
//!    superblock also records the [`CommitMode`] the pool was created under;
//!    opening with a conflicting explicit mode is a
//!    [`CommitModeMismatch`](OpenError::CommitModeMismatch) — the batched
//!    crash contract is a property of the *data*, not of the reader.
//! 2. **Adopt** — each directory entry becomes a live [`Arena`]
//!    (`Arena::adopt_from_pool`): the persisted header's magic and slot size
//!    are checked against the directory, the high-water mark against the
//!    mapped capacity, the durable free list is walked (bounds + cycle
//!    check), and every root-table entry is screened for tearing.
//! 3. **Recover** — the adopted arenas' memory *is* the crash image: it is
//!    dumped into a [`CrashImage`] and handed to the existing image-only
//!    [`FlitDb::recover`], so the same [`DbRecovery`] the simulated crash
//!    sweeps interrogate describes the real pool. Structures then rebuild from
//!    the durable roots exactly as they do in the simulated harness.
//! 4. **GC** — the volatile recycle list died with the crashed process, so
//!    slots retired-but-not-reused at the kill are reachable from no root and
//!    on no free list: leaked. `flit_alloc::post_crash_gc` runs a conservative
//!    mark-and-sweep from the adopted root tables and hands every leaked slot
//!    back to the allocator's *durable* free list; the [`OpenReport`] surfaces
//!    the count ([`OpenReport::leaked_slots`]). The pass is idempotent — a
//!    second pass reclaims zero, and a clean reopen reports zero leaks —
//!    which the kill harness asserts after every crash.
//!
//! Fresh pools come from [`FlitDbBuilder::create_pool`]; a database built
//! either way allocates all subsequent arenas *on the pool*, so everything a
//! structure persists lands in the file. [`FlitDb::create_volatile`] keeps the
//! old heap-backed behaviour for simulation and tests.
//!
//! ## Migration from the free-function style
//!
//! | old | new |
//! |---|---|
//! | `presets::flit_ht(backend)` + `Map::with_capacity(policy, n)` | [`FlitDb::flit_ht`]`(backend)` + `Map::with_capacity(&db, n)` |
//! | `FlitDb::create(policy)` with ad-hoc knobs | [`FlitDb::builder`]`(policy).commit_mode(…).arena_defaults(…).build()` |
//! | `map.insert(k, v)` | `map.insert(&h, k, v)` with `let h = db.handle();` |
//! | `policy.operation_completion()` | [`FlitHandle::operation_completion`] |
//! | `policy.persist_object(&node, flag)` | [`FlitHandle::persist_object`] |
//! | `structure.collector().pin()` | [`FlitHandle::pin`] |
//! | (implicit per-thread epoch) | [`FlitHandle::epoch`] |
//! | `db.new_arena(slot_size, chunk_slots)` | [`FlitDb::new_arena`]`(ArenaConfig::with_slot_size(slot_size).chunked(chunk_slots))` |
//! | `db.new_arena_for::<T>(chunk_slots)` | [`FlitDb::new_arena_for`]`::<T>(ArenaConfig::with_slots_per_chunk(chunk_slots))` |
//! | `db.new_arena_cfg(slot_size, cfg)` / `db.new_arena_for_cfg::<T>(cfg)` | [`FlitDb::new_arena`]`(cfg.sized(slot_size))` / [`FlitDb::new_arena_for`]`::<T>(cfg)` |

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use flit_alloc::{post_crash_gc, Arena, ArenaConfig, GcOutcome, ImageHeader};
use flit_ebr::{Collector, Guard, LocalHandle};
use flit_obs::{Counter, CounterShard, FlightEvent, FlightRecorder, MetricsSnapshot, Registry};
use flit_pmem::{
    cache_line_of, CommitMode, CrashImage, ElisionMode, OpenError, PersistEpoch, PmemBackend,
    PmemSession, PoolFile, PoolOptions, StatsSnapshot, CACHE_LINE_SIZE,
};

use crate::pflag::PFlag;
use crate::policy::Policy;

static NEXT_DB_ID: AtomicU64 = AtomicU64::new(1);

struct DbInner<P: Policy> {
    policy: P,
    collector: Collector,
    arenas: Mutex<Vec<Arc<Arena>>>,
    id: u64,
    handles_created: AtomicU64,
    commit: CommitMode,
    arena_defaults: ArenaConfig,
    /// Total completion obligations acknowledged db-wide (group commit); stays
    /// 0 under [`CommitMode::Immediate`], where completions are synchronous.
    watermark: AtomicU64,
    /// Per-handle acknowledged-obligation counts, keyed by handle id — what
    /// [`FlitDb::is_durable`] checks a [`Ticket`] against. Off the hot path:
    /// written once per batch drain, not per operation.
    acks: Mutex<HashMap<u64, u64>>,
    /// The file-backed pool this database lives on, if any: when set, every
    /// arena is created on (or was adopted from) the pool's directory.
    pool: Option<Arc<PoolFile>>,
    /// The metrics registry this database reports into (a fresh one unless the
    /// builder injected a shared registry, as `flit-server` does to aggregate
    /// its shards). Backend counters are *pulled* into gauges at
    /// [`FlitDb::metrics_snapshot`] time, never pushed on the hot path.
    metrics: Registry,
    /// Base label pairs stamped on every metric of this database (e.g.
    /// `shard=3` on a server shard); empty by default.
    metric_labels: Vec<(String, String)>,
    /// Batch drains across every handle (each handle increments a private
    /// shard of this counter).
    drains: Counter,
    /// Blocking [`FlitDb::wait`] calls that actually spun at least once.
    ticket_waits: Counter,
    /// Total completion obligations enqueued db-wide (group commit) — the
    /// numerator of the durable-watermark lag gauge. One relaxed increment per
    /// *batched* completion; stays 0 (and costs nothing) under
    /// [`CommitMode::Immediate`].
    obligations_enqueued: AtomicU64,
    /// Each live-or-dead handle's flight recorder, keyed by handle id, so
    /// [`FlitDb::dump_flight_recorder`] can snapshot every handle's event tail
    /// from any thread. Populated only when the `flight-recorder` feature is
    /// on (the recorder is a zero-sized no-op otherwise).
    flights: Mutex<Vec<(u64, FlightRecorder)>>,
}

/// The facade owning a database's shared state: policy (scheme + backend), the
/// EBR collector, and the arena registry. Cheap to clone (reference counted);
/// structures hold a clone, handles borrow one. See the module docs.
pub struct FlitDb<P: Policy> {
    inner: Arc<DbInner<P>>,
}

impl<P: Policy> Clone for FlitDb<P> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<P: Policy> std::fmt::Debug for FlitDb<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlitDb")
            .field("id", &self.inner.id)
            .field("policy", &self.inner.policy.label())
            .field("arenas", &self.inner.arenas.lock().unwrap().len())
            .field("handles_created", &self.inner.handles_created)
            .finish()
    }
}

/// Configures and builds a [`FlitDb`] — the one construction surface behind
/// every constructor ([`FlitDb::create`], [`FlitDb::open`] and the facade
/// constructors are thin wrappers over it). Terminal methods pick the backing:
/// [`build`](Self::build) (heap), [`create_pool`](Self::create_pool) (fresh
/// pool file), [`open_pool`](Self::open_pool) (existing pool file, full
/// recovery pipeline).
///
/// Knobs: the [`CommitMode`] (durability acknowledgment policy, see the module
/// docs) and the default [`ArenaConfig`] structure constructors fall back to.
/// Backend statistics remain a *backend* construction concern — configure them
/// where the backend is built (e.g. `SimNvram::builder().tracking(true)`), not
/// here.
#[must_use = "a builder does nothing until .build()"]
pub struct FlitDbBuilder<P: Policy> {
    policy: P,
    /// `None` until [`commit_mode`](Self::commit_mode) is called — so
    /// [`open_pool`](Self::open_pool) can tell "the caller insists on this
    /// mode" (must match the pool) from "use whatever the pool records".
    commit: Option<CommitMode>,
    arena_defaults: ArenaConfig,
    /// A shared registry (plus base labels) injected by the caller; a fresh
    /// unlabelled registry when `None`.
    metrics: Option<(Registry, Vec<(String, String)>)>,
}

impl<P: Policy> FlitDbBuilder<P> {
    /// The durability acknowledgment mode ([`CommitMode::Immediate`] unless
    /// set). Every handle of the built database inherits it. Setting it
    /// explicitly makes [`open_pool`](Self::open_pool) *require* the pool to
    /// have been created under the same mode.
    pub fn commit_mode(mut self, commit: CommitMode) -> Self {
        self.commit = Some(commit);
        self
    }

    /// The [`ArenaConfig`] that [`FlitDb::arena_defaults`] reports — what
    /// structure constructors use when the caller passes no explicit config.
    ///
    /// Both sizing axes flow through here: `slot_size` (bytes per slot) and
    /// `slots_per_chunk` (how many slots each growth step adds, settable via
    /// [`ArenaConfig::with_slots_per_chunk`] / [`ArenaConfig::chunked`]).
    /// Structures with their own node shapes override the slot size but
    /// honour the chunk growth — e.g. the copy-on-write HAMT starts from the
    /// small-slot [`ArenaConfig::hamt_nodes`] preset and takes the *larger* of
    /// the preset's and the configured `slots_per_chunk`, so a builder that
    /// says `.arena_defaults(ArenaConfig::with_slots_per_chunk(1 << 16))`
    /// makes every structure of the database grow its arena in 64Ki-slot
    /// steps.
    pub fn arena_defaults(mut self, config: ArenaConfig) -> Self {
        self.arena_defaults = config;
        self
    }

    /// Report this database's metrics into `registry` instead of a private
    /// one, stamping `labels` on every series it creates — how `flit-server`
    /// aggregates per-shard databases into one snapshot (`shard=<i>` labels on
    /// a shared registry).
    pub fn metrics(mut self, registry: Registry, labels: &[(&str, &str)]) -> Self {
        self.metrics = Some((
            registry,
            labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        ));
        self
    }

    /// Assemble the database value: a new collector, no arenas yet.
    fn assemble(
        policy: P,
        commit: CommitMode,
        arena_defaults: ArenaConfig,
        pool: Option<Arc<PoolFile>>,
        metrics: Option<(Registry, Vec<(String, String)>)>,
    ) -> FlitDb<P> {
        let (metrics, metric_labels) = metrics.unwrap_or_default();
        let label_refs: Vec<(&str, &str)> = metric_labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let drains = metrics.counter("flit_handle_drains_total", &label_refs);
        let ticket_waits = metrics.counter("flit_ticket_waits_total", &label_refs);
        FlitDb {
            inner: Arc::new(DbInner {
                policy,
                collector: Collector::new(),
                arenas: Mutex::new(Vec::new()),
                id: NEXT_DB_ID.fetch_add(1, Ordering::Relaxed),
                handles_created: AtomicU64::new(0),
                commit,
                arena_defaults,
                watermark: AtomicU64::new(0),
                acks: Mutex::new(HashMap::new()),
                pool,
                metrics,
                metric_labels,
                drains,
                ticket_waits,
                obligations_enqueued: AtomicU64::new(0),
                flights: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Build a volatile (heap-backed) database: a new collector, no arenas yet.
    pub fn build(self) -> FlitDb<P> {
        let commit = self.commit.unwrap_or_default();
        Self::assemble(self.policy, commit, self.arena_defaults, None, self.metrics)
    }

    /// Build the database on a **fresh file-backed pool** at `path` (truncating
    /// any existing file) with default [`PoolOptions`]. Every arena created on
    /// the database lands in the pool, so the file can later be re-opened with
    /// [`open_pool`](Self::open_pool).
    pub fn create_pool(self, path: impl AsRef<Path>) -> Result<FlitDb<P>, OpenError> {
        self.create_pool_with(path, &PoolOptions::default())
    }

    /// [`create_pool`](Self::create_pool) with explicit [`PoolOptions`]
    /// (capacity, DAX mapping). The pool's superblock records this builder's
    /// [`CommitMode`] so a later open can enforce the compatibility check.
    pub fn create_pool_with(
        self,
        path: impl AsRef<Path>,
        options: &PoolOptions,
    ) -> Result<FlitDb<P>, OpenError> {
        let commit = self.commit.unwrap_or_default();
        let pool = PoolFile::create(path, options, commit.compat_word())?;
        Ok(Self::assemble(
            self.policy,
            commit,
            self.arena_defaults,
            Some(pool),
            self.metrics,
        ))
    }

    /// Open the existing pool at `path` and run the full validate → adopt →
    /// recover → GC pipeline (see the module docs). Returns the database plus
    /// an [`OpenReport`] describing what recovery found.
    ///
    /// The commit mode comes from the pool's superblock; if this builder set
    /// one explicitly it must match, else
    /// [`OpenError::CommitModeMismatch`] (with `pool: None` when the recorded
    /// word does not decode to any mode at all — a corrupt superblock).
    pub fn open_pool(self, path: impl AsRef<Path>) -> Result<(FlitDb<P>, OpenReport), OpenError> {
        let phase_start = Instant::now();
        let pool = PoolFile::open(path)?;
        let requested = self.commit;
        let commit = match (CommitMode::from_compat_word(pool.commit_word()), requested) {
            (Some(recorded), Some(asked)) if recorded != asked => {
                return Err(OpenError::CommitModeMismatch {
                    pool: Some(recorded),
                    requested: asked,
                });
            }
            (Some(recorded), _) => recorded,
            (None, asked) => {
                return Err(OpenError::CommitModeMismatch {
                    pool: None,
                    requested: asked.unwrap_or_default(),
                });
            }
        };
        let db = Self::assemble(
            self.policy,
            commit,
            self.arena_defaults,
            Some(Arc::clone(&pool)),
            self.metrics,
        );
        let validate_ns = phase_start.elapsed().as_nanos() as u64;

        // Adopt: every directory entry becomes a live arena, fully validated.
        let phase_start = Instant::now();
        {
            let mut arenas = db.inner.arenas.lock().unwrap();
            for index in 0..pool.arena_count() {
                arenas.push(Arc::new(Arena::adopt_from_pool(&pool, index)?));
            }
        }
        let arenas = db.arenas();
        let adopt_ns = phase_start.elapsed().as_nanos() as u64;

        // Recover: the mapped pool *is* the crash image — dump it and reuse
        // the image-only recovery path unchanged.
        let phase_start = Instant::now();
        let mut image = CrashImage::new();
        for arena in &arenas {
            arena.dump_into_image(&mut image);
        }
        let recovery = db.recover(&image);
        let recover_ns = phase_start.elapsed().as_nanos() as u64;

        // GC: slots that died on the volatile recycle list go back to the
        // durable free list, so the reclamation itself survives a reopen.
        let phase_start = Instant::now();
        let gc = post_crash_gc(&arenas);
        let gc_ns = phase_start.elapsed().as_nanos() as u64;

        let report = OpenReport {
            arenas: arenas.len(),
            recovery,
            gc,
            image,
            timings: OpenTimings {
                validate_ns,
                adopt_ns,
                recover_ns,
                gc_ns,
            },
        };
        Ok((db, report))
    }
}

impl<P: Policy> FlitDb<P> {
    /// Start configuring a database over `policy`. See [`FlitDbBuilder`].
    pub fn builder(policy: P) -> FlitDbBuilder<P> {
        FlitDbBuilder {
            policy,
            commit: None,
            arena_defaults: ArenaConfig::default(),
            metrics: None,
        }
    }

    /// Create a fresh database over `policy` with default settings
    /// (equivalent to `FlitDb::builder(policy).build()`).
    pub fn create(policy: P) -> Self {
        Self::builder(policy).build()
    }

    /// Create a fresh **heap-backed** database over `policy` — an explicit
    /// alias of [`create`](Self::create) for call sites that want to spell out
    /// that nothing survives the process (simulation, unit tests). The
    /// file-backed counterpart is [`open`](Self::open) /
    /// [`FlitDbBuilder::create_pool`].
    pub fn create_volatile(policy: P) -> Self {
        Self::create(policy)
    }

    /// Open the existing file-backed pool at `path` over `policy`, adopting the
    /// commit mode recorded in its superblock, and run the full
    /// validate → adopt → recover → GC pipeline (see the module docs).
    ///
    /// Equivalent to `FlitDb::builder(policy).open_pool(path)`; use the builder
    /// form to additionally pin an expected [`CommitMode`] or arena defaults.
    /// Every map or validation failure is a typed [`OpenError`] — a corrupt or
    /// truncated pool never panics.
    pub fn open(path: impl AsRef<Path>, policy: P) -> Result<(Self, OpenReport), OpenError> {
        Self::builder(policy).open_pool(path)
    }

    /// The durability acknowledgment mode this database was built with.
    #[inline]
    pub fn commit_mode(&self) -> CommitMode {
        self.inner.commit
    }

    /// Total completion obligations acknowledged across every handle of this
    /// database (group commit). Advances only at batch drains — overflow,
    /// [`FlitHandle::flush_async`], handle drop — so under
    /// [`CommitMode::Immediate`] (where completions are synchronously durable
    /// and nothing is ever enqueued) it stays 0.
    pub fn durable_watermark(&self) -> u64 {
        self.inner.watermark.load(Ordering::Acquire)
    }

    /// `true` when every operation `ticket` covers has been acknowledged as
    /// durable. Non-blocking; callable from any thread.
    pub fn is_durable(&self, ticket: Ticket) -> bool {
        debug_assert_eq!(ticket.db_id, self.id(), "ticket from another FlitDb");
        if ticket.target == 0 {
            return true;
        }
        self.inner
            .acks
            .lock()
            .unwrap()
            .get(&ticket.handle_id)
            .is_some_and(|&acked| acked >= ticket.target)
    }

    /// Block until every operation `ticket` covers is acknowledged as durable.
    ///
    /// Acknowledgment can only come from the ticket's own handle draining its
    /// queue (overflow, [`FlitHandle::flush_async`], or drop) — per-handle
    /// persistence state means no other thread can fence on its behalf — so
    /// wait on a ticket only when its handle is guaranteed to drain
    /// (tickets from `flush_async` are acknowledged at issue; tickets from
    /// [`FlitHandle::ticket`] need a later drain).
    pub fn wait(&self, ticket: Ticket) {
        let mut spun = false;
        while !self.is_durable(ticket) {
            if !spun {
                spun = true;
                self.inner.ticket_waits.add(1);
            }
            std::thread::yield_now();
        }
    }

    /// Record a drained batch: `acked_total` obligations of handle `handle_id`
    /// are now acknowledged, `newly` of them by this drain.
    fn ack_obligations(&self, handle_id: u64, acked_total: u64, newly: u64) {
        self.inner.watermark.fetch_add(newly, Ordering::AcqRel);
        self.inner
            .acks
            .lock()
            .unwrap()
            .insert(handle_id, acked_total);
    }

    /// The persistence policy of this database.
    #[inline]
    pub fn policy(&self) -> &P {
        &self.inner.policy
    }

    /// The backend of this database's policy.
    #[inline]
    pub fn backend(&self) -> &P::Backend {
        self.inner.policy.backend()
    }

    /// The EBR collector every structure of this database retires through.
    #[inline]
    pub fn collector(&self) -> &Collector {
        &self.inner.collector
    }

    /// Process-unique id of this database (handles carry it so mismatched
    /// handle/structure pairings can be debug-asserted).
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Human-readable policy label (e.g. `"flit-HT (1MB)"`).
    pub fn label(&self) -> String {
        self.inner.policy.label()
    }

    /// Snapshot of the backend's persistence-instruction counters, if it keeps
    /// any.
    pub fn stats_snapshot(&self) -> Option<StatsSnapshot> {
        self.inner.policy.stats_snapshot()
    }

    /// The metrics registry this database reports into (injected via
    /// [`FlitDbBuilder::metrics`], or a private one).
    #[inline]
    pub fn metrics(&self) -> &Registry {
        &self.inner.metrics
    }

    /// Refresh this database's gauges from their live sources and snapshot the
    /// registry.
    ///
    /// This is the *pull* half of the instrumentation: backend counters
    /// (`PmemStats` — pwbs, pfences, read-side pwbs, both elision kinds),
    /// the durable watermark and its lag, and per-arena occupancy (slots in
    /// use, durable free-list depth, chunk growth) are read here, at snapshot
    /// time, instead of being double-counted on the persistence hot path.
    /// Counters that have no other home (handle batch drains, ticket waits)
    /// are pushed by their owners and only aggregated here.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let base = &self.inner.metric_labels;
        let with_base = |extra: &[(&str, &str)]| -> Vec<(String, String)> {
            base.iter()
                .cloned()
                .chain(extra.iter().map(|(k, v)| (k.to_string(), v.to_string())))
                .collect()
        };
        let set = |name: &str, labels: &[(&str, &str)], value: u64| {
            let owned = with_base(labels);
            let refs: Vec<(&str, &str)> = owned
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            self.inner.metrics.gauge(name, &refs).set(value);
        };
        if let Some(stats) = self.stats_snapshot() {
            set("flit_pwbs_total", &[], stats.pwbs);
            set("flit_pfences_total", &[], stats.pfences);
            set("flit_read_side_pwbs_total", &[], stats.read_side_pwbs);
            // Elided pwbs are exactly the dedup hits of `pwb_dedup`.
            set("flit_dedup_hits_total", &[], stats.elided_pwbs);
            set("flit_elided_pfences_total", &[], stats.elided_pfences);
        }
        let watermark = self.durable_watermark();
        let enqueued = self.inner.obligations_enqueued.load(Ordering::Acquire);
        set("flit_durable_watermark", &[], watermark);
        set("flit_obligations_enqueued_total", &[], enqueued);
        set(
            "flit_watermark_lag",
            &[],
            enqueued.saturating_sub(watermark),
        );
        set("flit_handles_created_total", &[], self.handles_created());
        for (index, arena) in self.arenas().iter().enumerate() {
            let index = index.to_string();
            let labels: [(&str, &str); 1] = [("arena", index.as_str())];
            let high_water = arena.high_water();
            let free = arena.durable_free_offsets().len() + arena.recycled_offsets().len();
            let chunk_slots = arena.chunk_slots().max(1);
            set(
                "flit_arena_slots_in_use",
                &labels,
                high_water.saturating_sub(free) as u64,
            );
            set(
                "flit_arena_free_list_depth",
                &labels,
                arena.durable_free_offsets().len() as u64,
            );
            set("flit_arena_high_water", &labels, high_water as u64);
            set(
                "flit_arena_chunks",
                &labels,
                (high_water.div_ceil(chunk_slots)) as u64,
            );
        }
        self.inner.metrics.snapshot()
    }

    /// Snapshot every handle's flight-recorder tail, keyed by handle id
    /// (oldest event first within each handle). Empty unless the
    /// `flight-recorder` cargo feature is enabled; a handle's tail stays
    /// empty until its recorder is armed.
    pub fn flight_snapshots(&self) -> Vec<(u64, Vec<FlightEvent>)> {
        self.inner
            .flights
            .lock()
            .unwrap()
            .iter()
            .map(|(id, rec)| (*id, rec.snapshot()))
            .collect()
    }

    /// The flight-recorder tails of every handle as one JSON document
    /// (schema `flit-obs-flight-v1`). With the `flight-recorder` feature off
    /// this is an empty (but well-formed) document; un-armed handles
    /// contribute empty tails.
    pub fn dump_flight_recorder(&self) -> String {
        let handles: Vec<String> = self
            .flight_snapshots()
            .iter()
            .map(|(id, events)| {
                let rows: Vec<String> = events.iter().map(|e| e.to_json()).collect();
                format!("{{\"handle\":{},\"events\":[{}]}}", id, rows.join(","))
            })
            .collect();
        format!(
            "{{\"schema\":\"flit-obs-flight-v1\",\"enabled\":{},\"capacity\":{},\"handles\":[{}]}}",
            FlightRecorder::ENABLED,
            if FlightRecorder::ENABLED {
                flit_obs::FLIGHT_CAPACITY
            } else {
                0
            },
            handles.join(",")
        )
    }

    /// Register a new per-logical-thread session. Handles are cheap (no
    /// persistence events) and `Send`: create one per worker thread — or several
    /// on one thread for controlled interleaving.
    pub fn handle(&self) -> FlitHandle<'_, P> {
        let id = self.inner.handles_created.fetch_add(1, Ordering::Relaxed);
        let epoch = PersistEpoch::new();
        if FlightRecorder::ENABLED {
            self.inner
                .flights
                .lock()
                .unwrap()
                .push((id, epoch.flight().clone()));
        }
        FlitHandle {
            db: self,
            epoch,
            elision: self.backend().elision_mode(),
            commit: self.inner.commit,
            deferred_closes: RefCell::new(Vec::new()),
            ebr: self.inner.collector.register(),
            drains: self.inner.drains.shard(),
            id,
        }
    }

    /// Number of handles ever created on this database (diagnostic).
    pub fn handles_created(&self) -> u64 {
        self.inner.handles_created.load(Ordering::Relaxed)
    }

    /// The default [`ArenaConfig`] of this database (set on the
    /// [`builder`](Self::builder)): what structure constructors use when the
    /// caller passes no explicit config.
    #[inline]
    pub fn arena_defaults(&self) -> ArenaConfig {
        self.inner.arena_defaults
    }

    /// Create (and register) an arena from `config` — slot size and chunk
    /// growth both come from the config ([`FlitDb::arena_defaults`] when the
    /// caller has no opinion). The persisted header is written through this
    /// database's backend. On a pool-backed database the arena claims the next
    /// pool-directory entry; a full pool panics here — use
    /// [`try_new_arena`](Self::try_new_arena) to handle exhaustion.
    pub fn new_arena(&self, config: ArenaConfig) -> Arc<Arena> {
        self.try_new_arena(config)
            .expect("arena creation failed (pool or directory exhausted)")
    }

    /// [`new_arena`](Self::new_arena), surfacing pool exhaustion
    /// ([`OpenError::PoolFull`], a full arena directory) as an error instead of
    /// panicking. Heap-backed databases never fail here.
    pub fn try_new_arena(&self, config: ArenaConfig) -> Result<Arc<Arena>, OpenError> {
        let arena = Arc::new(match &self.inner.pool {
            Some(pool) => Arena::create_on_pool(self.backend(), pool, config)?,
            None => Arena::with_config(self.backend(), config),
        });
        self.inner.arenas.lock().unwrap().push(Arc::clone(&arena));
        Ok(arena)
    }

    /// The file-backed pool this database lives on, if any.
    pub fn pool(&self) -> Option<Arc<PoolFile>> {
        self.inner.pool.clone()
    }

    /// `true` when this database's arenas live in a file-backed pool.
    pub fn is_pool_backed(&self) -> bool {
        self.inner.pool.is_some()
    }

    /// `msync` the whole pool mapping and sync the backing file's metadata; a
    /// no-op on heap-backed databases. The SIGKILL crash model does not need
    /// this (completed stores survive in the page cache); it is the
    /// power-failure-realism knob and the natural "checkpoint now" call for a
    /// server shutting down cleanly.
    pub fn sync_pool(&self) -> Result<(), OpenError> {
        match &self.inner.pool {
            Some(pool) => pool.sync(),
            None => Ok(()),
        }
    }

    /// Create (and register) an arena sized for slots of type `T`:
    /// `config.slot_size` is ignored in favour of the type's padded size.
    pub fn new_arena_for<T>(&self, config: ArenaConfig) -> Arc<Arena> {
        self.new_arena(config.sized(Arena::slot_size_for::<T>()))
    }

    /// Every arena created through this database, in creation order.
    pub fn arenas(&self) -> Vec<Arc<Arena>> {
        self.inner.arenas.lock().unwrap().clone()
    }

    /// Survey what `image` holds of this database: per arena, the persisted
    /// header and the durably-registered recovery roots. This is the
    /// type-agnostic half of recovery — each structure's
    /// `recover_in_image(arena, image)` rebuilds its abstract state from the
    /// roots reported here.
    pub fn recover(&self, image: &CrashImage) -> DbRecovery {
        DbRecovery {
            arenas: self
                .arenas()
                .iter()
                .map(|arena| ArenaRecovery {
                    header: arena.image_header(image),
                    durable_roots: arena.roots_in_image(image),
                })
                .collect(),
        }
    }
}

// ---- facade constructors -------------------------------------------------
//
// The paper's evaluated configurations, one constructor per variant: these
// replace the old free-function `presets::*` + hand-wired plumbing at call
// sites (`presets` remains for code that only needs the bare policy).

use flit_pmem::SimNvram;

use crate::flit_atomic::{FlitPolicy, PlainPolicy};
use crate::link_persist::LinkAndPersistPolicy;
use crate::no_persist::NoPersistPolicy;
use crate::scheme::{AdjacentScheme, CacheLineScheme, HashedScheme, PlainScheme};

impl FlitDb<PlainPolicy<SimNvram>> {
    /// `plain`: durable transformation with no read-side flush elision.
    pub fn plain(backend: SimNvram) -> Self {
        Self::create(FlitPolicy::new(PlainScheme, backend))
    }
}

impl FlitDb<FlitPolicy<AdjacentScheme, SimNvram>> {
    /// `flit-adjacent`: FliT with a counter next to every word.
    pub fn flit_adjacent(backend: SimNvram) -> Self {
        Self::create(FlitPolicy::new(AdjacentScheme, backend))
    }
}

impl FlitDb<FlitPolicy<HashedScheme, SimNvram>> {
    /// `flit-HT`: FliT with a hashed counter table of the paper's default size
    /// (1 MB).
    pub fn flit_ht(backend: SimNvram) -> Self {
        Self::create(FlitPolicy::new(HashedScheme::new_default(), backend))
    }

    /// `flit-HT` with an explicit table size in bytes (the Figure 5 sweep).
    pub fn flit_ht_sized(backend: SimNvram, bytes: usize) -> Self {
        Self::create(FlitPolicy::new(HashedScheme::with_bytes(bytes), backend))
    }
}

impl FlitDb<FlitPolicy<CacheLineScheme, SimNvram>> {
    /// `flit-cacheline`: one counter per cache line (paper §8 future work).
    pub fn flit_cacheline(backend: SimNvram) -> Self {
        Self::create(FlitPolicy::new(CacheLineScheme::new_default(), backend))
    }
}

impl FlitDb<LinkAndPersistPolicy<SimNvram>> {
    /// `link-and-persist`: the bit-tagging comparator.
    pub fn link_and_persist(backend: SimNvram) -> Self {
        Self::create(LinkAndPersistPolicy::new(backend))
    }
}

impl FlitDb<NoPersistPolicy> {
    /// The non-persistent baseline.
    pub fn no_persist() -> Self {
        Self::create(NoPersistPolicy::new())
    }
}

/// What opening an existing pool found: produced by [`FlitDb::open`] /
/// [`FlitDbBuilder::open_pool`] alongside the database itself, one stage of
/// the pipeline per field (see the module docs).
#[derive(Debug, Clone)]
pub struct OpenReport {
    /// Arenas adopted from the pool directory.
    pub arenas: usize,
    /// The image-only recovery survey: per-arena persisted headers and the
    /// durably-registered roots — what structures rebuild from.
    pub recovery: DbRecovery,
    /// The post-crash GC accounting: per-arena reachable / free-listed /
    /// reclaimed slot counts.
    pub gc: GcOutcome,
    /// The crash image synthesized from the mapped pool — structures' own
    /// `recover_in_image` passes read from it.
    pub image: CrashImage,
    /// Wall-clock cost of each pipeline phase — recovery cost, finally
    /// measurable (`killtest` prints these per round).
    pub timings: OpenTimings,
}

impl OpenReport {
    /// Slots that were unreachable from every root table when the pool was
    /// opened (they died on the volatile recycle list, or in the window
    /// between allocation and publication) and were reclaimed by the GC pass.
    pub fn leaked_slots(&self) -> usize {
        self.gc.total_reclaimed()
    }

    /// `true` when `key` was durably registered in any arena's root table.
    pub fn has_root(&self, key: u64) -> bool {
        self.recovery.has_root(key)
    }

    /// One-line per-arena GC accounting, e.g.
    /// `"arena0 reachable=12 free=3 reclaimed=1"` joined by `"; "` — the
    /// detail behind [`leaked_slots`](Self::leaked_slots).
    pub fn gc_detail(&self) -> String {
        self.gc
            .arenas
            .iter()
            .enumerate()
            .map(|(i, a)| {
                format!(
                    "arena{} reachable={} free={} reclaimed={}",
                    i, a.reachable, a.free_listed, a.reclaimed
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Wall-clock nanoseconds spent in each phase of the
/// validate → adopt → recover → GC open pipeline (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenTimings {
    /// Superblock read + validation + mapping at the recorded base.
    pub validate_ns: u64,
    /// Directory walk adopting every arena (header checks, free-list walk).
    pub adopt_ns: u64,
    /// Dumping the mapped pool into a [`CrashImage`] and surveying the roots.
    pub recover_ns: u64,
    /// The conservative post-crash mark-and-sweep.
    pub gc_ns: u64,
}

impl OpenTimings {
    /// Total time across all four phases.
    pub fn total_ns(&self) -> u64 {
        self.validate_ns + self.adopt_ns + self.recover_ns + self.gc_ns
    }
}

/// What [`FlitDb::recover`] reports: the durably-constructed state of each arena
/// in a crash image.
#[derive(Debug, Clone)]
pub struct DbRecovery {
    /// One entry per arena, in creation order.
    pub arenas: Vec<ArenaRecovery>,
}

impl DbRecovery {
    /// `true` when `key` is durably registered in any arena's root table.
    pub fn has_root(&self, key: u64) -> bool {
        self.arenas
            .iter()
            .any(|a| a.durable_roots.iter().any(|(k, _)| *k == key))
    }
}

/// The recoverable state of one arena as persisted in a crash image.
#[derive(Debug, Clone)]
pub struct ArenaRecovery {
    /// The arena's persisted header (always reachable, even mid-construction).
    pub header: ImageHeader,
    /// The durably-registered `(root key, slot base address)` pairs.
    pub durable_roots: Vec<(u64, usize)>,
}

/// An explicit per-logical-thread session on a [`FlitDb`]: the persist epoch
/// (fence/flush elision state), the EBR participant, and backend access. Every
/// data-structure operation takes `&FlitHandle`. See the module docs.
///
/// `Send` but `!Sync`: a handle may outlive (or migrate between) OS threads,
/// but represents exactly one logical thread at a time.
pub struct FlitHandle<'db, P: Policy> {
    db: &'db FlitDb<P>,
    epoch: PersistEpoch,
    elision: ElisionMode,
    commit: CommitMode,
    /// Word addresses whose untag was deferred by group commit: each p-store
    /// this handle issued under [`CommitMode::Batched`] (on a policy whose
    /// scheme supports address-only closes) skipped its trailing fence and left
    /// the word tagged; the tag is closed at this handle's next fence point
    /// (see [`close_deferred_stores`](Self::close_deferred_stores)).
    deferred_closes: RefCell<Vec<usize>>,
    ebr: LocalHandle,
    /// Private shard of the db-wide batch-drain counter.
    drains: CounterShard,
    id: u64,
}

/// A durability receipt under group commit ([`CommitMode::Batched`]): covers
/// every operation completed on its handle up to the moment it was cut
/// ([`FlitHandle::flush_async`] / [`FlitHandle::ticket`]). Check it with
/// [`FlitDb::is_durable`] or block on it with [`FlitDb::wait`] — from any
/// thread. Plain `Copy` data; holding one keeps nothing alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a ticket is only useful if something waits on or checks it"]
pub struct Ticket {
    db_id: u64,
    handle_id: u64,
    target: u64,
}

impl Ticket {
    /// How many operations (completion obligations) of the issuing handle this
    /// ticket covers, counted from the handle's creation.
    pub fn covered(&self) -> u64 {
        self.target
    }
}

impl<'db, P: Policy> std::fmt::Debug for FlitHandle<'db, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlitHandle")
            .field("id", &self.id)
            .field("db", &self.db.id())
            .field("dirty", &!self.epoch.is_clean())
            .finish()
    }
}

impl<'db, P: Policy> FlitHandle<'db, P> {
    /// The database this handle belongs to.
    #[inline]
    pub fn db(&self) -> &'db FlitDb<P> {
        self.db
    }

    /// The database's policy (schemes consult it on the hot path).
    #[inline]
    pub fn policy(&self) -> &'db P {
        self.db.policy()
    }

    /// Id of this handle within its database (diagnostic).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Id of the owning database (structures debug-assert it matches theirs).
    #[inline]
    pub fn db_id(&self) -> u64 {
        self.db.id()
    }

    /// This handle's persist-epoch state (diagnostics and tests).
    #[inline]
    pub fn epoch(&self) -> &PersistEpoch {
        &self.epoch
    }

    /// Arm this handle's flight recorder. Rings are created dormant even with
    /// the `flight-recorder` feature compiled in, so an instrumented build
    /// pays only a predictable branch per event until somebody asks for the
    /// tail; arming is one-way and shared with every snapshot of this ring.
    /// A no-op with the feature off.
    pub fn arm_flight_recorder(&self) {
        self.epoch.arm_flight();
    }

    /// The tail of this handle's persistence event stream, oldest first.
    /// Empty unless the `flight-recorder` cargo feature is enabled *and* the
    /// handle's recorder has been armed (see
    /// [`arm_flight_recorder`](Self::arm_flight_recorder)).
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        self.epoch.flight().snapshot()
    }

    /// `true` when this handle has issued `pwb`s not yet committed by a fence.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        !self.epoch.is_clean()
    }

    /// The backend as seen by *this handle*: a [`PmemSession`] that attributes
    /// every instruction to this handle's epoch and applies fence/flush elision
    /// accordingly. All persistence instructions of an operation must go through
    /// this view (raw [`FlitDb::backend`] calls would not be attributed).
    #[inline]
    pub fn pmem(&self) -> PmemSession<'_, P::Backend> {
        PmemSession::new(self.db.backend(), &self.epoch, self.elision)
    }

    /// Pin this handle's EBR participant: shared nodes may be dereferenced and
    /// retired only while the returned [`Guard`] is alive. Re-entrant per handle.
    #[inline]
    pub fn pin(&self) -> Guard<'_> {
        self.ebr.pin()
    }

    /// The paper's `persist::operation_completion()`: must be called at the end
    /// of every data-structure operation.
    ///
    /// Under [`CommitMode::Immediate`] this issues a `pfence` so that every
    /// dependency of the completed operation is persisted before the operation
    /// returns (P-V Interface, Condition 4). The fence goes through the
    /// session's [`pfence_if_dirty`](flit_pmem::PmemBackend::pfence_if_dirty):
    /// a handle that issued no `pwb` during the operation (e.g. a read-only
    /// operation over untagged words) holds no unpersisted dependency — every
    /// value it read was persisted by its writer's trailing fence before the
    /// word was untagged — so the completion fence is elided entirely.
    ///
    /// Under [`CommitMode::Batched`]`(k)` it enqueues a completion obligation
    /// instead, draining the queue (one fence for the whole batch) when it
    /// reaches `k` — the group-commit contract described in the module docs.
    #[inline]
    pub fn operation_completion(&self) {
        if !P::PERSISTENT {
            return;
        }
        match self.commit {
            CommitMode::Immediate => self.pmem().pfence_if_dirty(),
            CommitMode::Batched(k) => {
                self.db
                    .inner
                    .obligations_enqueued
                    .fetch_add(1, Ordering::Relaxed);
                if self.epoch.note_obligation() >= k.max(1) as u64 {
                    self.drain_obligations();
                }
            }
        }
    }

    /// Drain this handle's obligation queue: one
    /// [`pfence_if_dirty`](flit_pmem::PmemBackend::pfence_if_dirty) commits
    /// every write-back the batch produced, then the batch is acknowledged to
    /// the database (watermark + ticket bookkeeping). Eliding the fence on a
    /// clean epoch is sound: clean means fences issued *inside* later
    /// operations (object-initialisation persists, leading fences) already
    /// committed everything the batch flushed.
    fn drain_obligations(&self) {
        if self.epoch.pending_obligations() == 0 {
            return;
        }
        self.pmem().pfence_if_dirty();
        self.close_deferred_stores();
        let newly = self.epoch.take_obligations();
        self.db
            .ack_obligations(self.id, self.epoch.committed_obligations(), newly);
        self.drains.add(1);
    }

    /// Whether p-stores on this handle defer their trailing fence to the next
    /// fence point: true only under [`CommitMode::Batched`] *and* a policy whose
    /// scheme can close tags by address alone (see
    /// [`Policy::defers_store_fence`]). The adjacent scheme embeds its counter
    /// in the word — which may be reclaimed before a late close — so it keeps
    /// the inline trailing fence even when batched.
    #[inline]
    pub(crate) fn defers_store_fence(&self) -> bool {
        matches!(self.commit, CommitMode::Batched(_)) && self.db.policy().defers_store_fence()
    }

    /// Queue the untag of a p-store whose trailing fence was deferred; the word
    /// stays tagged (readers keep helping) until the handle's next fence point.
    #[inline]
    pub(crate) fn defer_store_close(&self, addr: usize) {
        self.deferred_closes.borrow_mut().push(addr);
    }

    /// Close every deferred untag whose backing write is now durable. Sound
    /// exactly when this handle's epoch is clean — clean means a fence
    /// committed every pwb the handle issued, the deferred stores' write-backs
    /// included — so this is called right after the fence points (the leading
    /// fence of the next update, a batch drain, handle drop). Closing *later*
    /// than possible is always protocol-safe (readers merely keep flushing a
    /// durable value); closing *earlier* would break Condition 4.
    #[inline]
    pub(crate) fn close_deferred_stores(&self) {
        if !self.epoch.is_clean() || self.deferred_closes.borrow().is_empty() {
            return;
        }
        let policy = self.db.policy();
        for addr in self.deferred_closes.borrow_mut().drain(..) {
            policy.close_deferred_store(addr);
        }
    }

    /// Drain the obligation queue now and return a [`Ticket`] covering every
    /// operation completed on this handle so far.
    ///
    /// The drain means the ticket is already durable when this returns — its
    /// value is cross-thread *observability* (hand it to a waiter checking
    /// [`FlitDb::wait`]) and the explicit-flush point of the group-commit
    /// contract. Under [`CommitMode::Immediate`] completions were synchronously
    /// durable all along, so the ticket is trivially durable. For a ticket
    /// that does *not* fence now, see [`FlitHandle::ticket`].
    pub fn flush_async(&self) -> Ticket {
        self.drain_obligations();
        self.ticket()
    }

    /// A [`Ticket`] covering every operation completed on this handle so far,
    /// **without** draining: it becomes durable at this handle's next drain
    /// (batch overflow, [`flush_async`](Self::flush_async), or drop).
    pub fn ticket(&self) -> Ticket {
        Ticket {
            db_id: self.db.id(),
            handle_id: self.id,
            target: self.epoch.enqueued_obligations(),
        }
    }

    /// Obligations acknowledged as durable on this handle (diagnostics and the
    /// crashtest harness's acknowledgment sampling).
    pub fn committed_obligations(&self) -> u64 {
        self.epoch.committed_obligations()
    }

    /// Obligations enqueued on this handle over its lifetime.
    pub fn enqueued_obligations(&self) -> u64 {
        self.epoch.enqueued_obligations()
    }

    /// Acknowledge every pending obligation **without fencing first** — the
    /// crashtest harness's broken control: it claims durability for operations
    /// whose write-backs may still be pending, which the batched-contract
    /// crash sweep must catch. Never call this outside that harness.
    #[doc(hidden)]
    pub fn ack_obligations_without_fence(&self) {
        let newly = self.epoch.take_obligations();
        if newly > 0 {
            self.db
                .ack_obligations(self.id, self.epoch.committed_obligations(), newly);
        }
    }

    /// Flush `len` bytes starting at `start` (every cache line they touch) and
    /// fence, attributed to this handle.
    ///
    /// Used to persist freshly initialised objects before they are published by
    /// a shared p-store; a no-op when `flag` is volatile or the policy is
    /// non-persistent.
    pub fn persist_range(&self, start: *const u8, len: usize, flag: PFlag) {
        if !P::PERSISTENT || flag.is_volatile() || len == 0 {
            return;
        }
        let pm = self.pmem();
        let first = cache_line_of(start as usize);
        let last = cache_line_of(start as usize + len - 1);
        let mut line = first;
        loop {
            pm.pwb(line as *const u8);
            if line == last {
                break;
            }
            line += CACHE_LINE_SIZE;
        }
        pm.pfence();
    }

    /// Persist an entire object (all cache lines it occupies). Typically called
    /// on a freshly allocated node right before the compare-and-swap that
    /// publishes it.
    pub fn persist_object<T>(&self, obj: &T, flag: PFlag) {
        self.persist_range(obj as *const T as *const u8, std::mem::size_of::<T>(), flag);
    }
}

impl<'db, P: Policy> Drop for FlitHandle<'db, P> {
    fn drop(&mut self) {
        if P::PERSISTENT {
            // Group commit: the obligation queue drains *before* any trailing
            // fence — the drain's single fence (issued only when the epoch is
            // dirty) doubles as the trailing fence, and the batch is
            // acknowledged so tickets covering it resolve and the watermark
            // advances even though the handle is going away mid-batch.
            self.drain_obligations();
            // A still-dirty handle holds pwbs no future fence of this logical
            // thread will ever commit (possible only when the caller abandoned
            // it mid-operation): issue the trailing fence now. A clean handle
            // (the normal case) costs nothing here. The EBR slot is returned
            // by `LocalHandle`'s own drop.
            if !self.epoch.is_clean() {
                self.pmem().pfence();
            }
            // Both paths above end with a clean epoch, so any untags still
            // deferred by group commit can be closed before the handle's words
            // lose their owner.
            self.close_deferred_stores();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit_atomic::FlitPolicy;
    use crate::policy::PersistWord;
    use crate::scheme::HashedScheme;
    use flit_pmem::{LatencyModel, SimNvram};

    type HtPolicy = FlitPolicy<HashedScheme, SimNvram>;

    fn db() -> FlitDb<HtPolicy> {
        FlitDb::create(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 16),
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ))
    }

    #[test]
    fn db_is_cloneable_and_shares_state() {
        let db = db();
        let clone = db.clone();
        assert_eq!(db.id(), clone.id());
        let _a = db.new_arena(ArenaConfig::with_slot_size(64).chunked(8));
        assert_eq!(clone.arenas().len(), 1);
    }

    #[test]
    fn handles_have_independent_epochs() {
        let db = db();
        let h1 = db.handle();
        let h2 = db.handle();
        assert_ne!(h1.id(), h2.id());
        let x = 1u64;
        h1.pmem().pwb(&x as *const u64 as *const u8);
        assert!(h1.is_dirty());
        assert!(!h2.is_dirty(), "h2 must not see h1's pwb");
        h2.operation_completion(); // clean handle: elided
        assert!(h1.is_dirty(), "h2's (elided) fence must not clean h1");
        h1.operation_completion(); // dirty handle: fences
        assert!(!h1.is_dirty());
        let stats = db.stats_snapshot().unwrap();
        assert_eq!(stats.pfences, 1);
        assert_eq!(stats.elided_pfences, 1);
    }

    #[test]
    fn dropping_a_dirty_handle_issues_the_trailing_fence() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::create(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 12),
            sim.clone(),
        ));
        let x = 0u64;
        let addr = &x as *const u64 as usize;
        {
            let h = db.handle();
            let pm = h.pmem();
            pm.record_store(addr as *const u8, 77);
            pm.pwb(addr as *const u8);
            assert!(h.is_dirty());
            // No fence: the value is flushed but not committed.
            assert_eq!(sim.tracker().unwrap().persisted_value(addr), None);
        } // drop: the trailing fence commits the pending flush
        assert_eq!(sim.tracker().unwrap().persisted_value(addr), Some(77));
    }

    #[test]
    fn dropping_a_clean_handle_fences_nothing() {
        let db = db();
        {
            let _h = db.handle();
        }
        assert_eq!(db.stats_snapshot().unwrap().pfences, 0);
    }

    #[test]
    fn handle_drop_returns_the_ebr_slot() {
        let db = db();
        for _ in 0..4 * flit_ebr::MAX_PARTICIPANTS {
            let h = db.handle();
            drop(h.pin());
        }
        assert_eq!(db.collector().participants(), 0);
    }

    #[test]
    fn persist_object_and_completion_go_through_the_handle() {
        let db = db();
        let h = db.handle();
        #[repr(align(64))]
        struct Big(#[allow(dead_code)] [u8; 128]);
        let big = Big([0; 128]);
        h.persist_object(&big, PFlag::Persisted);
        let snap = db.stats_snapshot().unwrap();
        assert_eq!(snap.pwbs, 2);
        assert_eq!(snap.pfences, 1);
        assert!(!h.is_dirty(), "persist_object ends fenced");
        h.persist_range(std::ptr::null(), 0, PFlag::Persisted);
        h.persist_object(&big, PFlag::Volatile);
        assert_eq!(db.stats_snapshot().unwrap().pwbs, 2, "no-ops stayed no-ops");
    }

    #[test]
    fn db_recover_reports_durable_roots() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::create(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 12),
            sim.clone(),
        ));
        let arena = db.new_arena(ArenaConfig::with_slot_size(64).chunked(8));
        let h = db.handle();
        let slot = arena.alloc(&h.pmem()) as usize;
        h.operation_completion();
        let before = db.recover(&sim.tracker().unwrap().crash_image());
        assert!(!before.has_root(flit_alloc::roots::LIST_HEAD));
        assert!(before.arenas[0].header.initialised);
        arena.register_root(&h.pmem(), flit_alloc::roots::LIST_HEAD, slot);
        let after = db.recover(&sim.tracker().unwrap().crash_image());
        assert!(after.has_root(flit_alloc::roots::LIST_HEAD));
        assert_eq!(after.arenas.len(), 1);
    }

    fn batched_db(k: usize) -> (SimNvram, FlitDb<HtPolicy>) {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::builder(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 12),
            sim.clone(),
        ))
        .commit_mode(CommitMode::Batched(k))
        .build();
        (sim, db)
    }

    #[test]
    fn builder_defaults_match_create() {
        let db = db();
        assert_eq!(db.commit_mode(), CommitMode::Immediate);
        assert_eq!(db.arena_defaults(), ArenaConfig::default());
        assert_eq!(db.durable_watermark(), 0);
    }

    #[test]
    fn builder_sets_commit_mode_and_arena_defaults() {
        let db = FlitDb::builder(FlitPolicy::new(
            HashedScheme::with_bytes(1 << 12),
            SimNvram::builder().latency(LatencyModel::none()).build(),
        ))
        .commit_mode(CommitMode::Batched(4))
        .arena_defaults(ArenaConfig::with_slots_per_chunk(128))
        .build();
        assert_eq!(db.commit_mode(), CommitMode::Batched(4));
        assert_eq!(db.arena_defaults().slots_per_chunk, 128);
    }

    #[test]
    fn batched_completion_defers_the_fence_until_the_batch_fills() {
        let (sim, db) = batched_db(3);
        let h = db.handle();
        let xs = [0u64; 3];
        for (i, x) in xs.iter().enumerate() {
            let addr = x as *const u64 as *const u8;
            let pm = h.pmem();
            pm.record_store(addr, i as u64 + 1);
            pm.pwb(addr);
            h.operation_completion();
        }
        // The third completion overflowed the batch: one drain fence committed
        // all three operations' write-backs and acknowledged them.
        assert!(!h.is_dirty());
        assert_eq!(db.durable_watermark(), 3);
        assert_eq!(h.committed_obligations(), 3);
        let tracker = sim.tracker().unwrap();
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(
                tracker.persisted_value(x as *const u64 as usize),
                Some(i as u64 + 1)
            );
        }
        assert_eq!(
            db.stats_snapshot().unwrap().pfences,
            1,
            "one fence per batch"
        );
    }

    #[test]
    fn flush_async_drains_midbatch_and_wait_observes_it() {
        let (sim, db) = batched_db(64);
        let h = db.handle();
        let x = 0u64;
        let addr = &x as *const u64 as usize;
        let pm = h.pmem();
        pm.record_store(addr as *const u8, 9);
        pm.pwb(addr as *const u8);
        h.operation_completion();
        // Mid-batch: completed but unacknowledged, flush not yet committed.
        assert!(h.is_dirty());
        assert_eq!(sim.tracker().unwrap().persisted_value(addr), None);
        let early = h.ticket();
        assert!(!db.is_durable(early), "nothing drained yet");
        let ticket = h.flush_async();
        assert!(db.is_durable(ticket));
        assert!(
            db.is_durable(early),
            "the drain acknowledged the earlier cut too"
        );
        db.wait(ticket);
        assert_eq!(ticket.covered(), 1);
        assert_eq!(sim.tracker().unwrap().persisted_value(addr), Some(9));
        assert_eq!(db.durable_watermark(), 1);
    }

    #[test]
    fn immediate_mode_tickets_are_trivially_durable() {
        let db = db();
        let h = db.handle();
        let w = <HtPolicy as Policy>::Word::<u64>::new(0);
        w.store(&h, 5, PFlag::Persisted);
        h.operation_completion();
        let ticket = h.flush_async();
        assert!(db.is_durable(ticket));
        assert_eq!(ticket.covered(), 0, "immediate mode enqueues nothing");
        assert_eq!(db.durable_watermark(), 0);
    }

    fn temp_pool(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("flit-db-{}-{name}.pool", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn ht_policy() -> HtPolicy {
        FlitPolicy::new(
            HashedScheme::with_bytes(1 << 12),
            SimNvram::builder().latency(LatencyModel::none()).build(),
        )
    }

    #[test]
    fn pool_create_then_open_recovers_roots_and_reclaims_leaks() {
        let path = temp_pool("roundtrip");
        {
            let db = FlitDb::builder(ht_policy()).create_pool(&path).unwrap();
            assert!(db.is_pool_backed());
            let arena = db.new_arena(ArenaConfig::with_slot_size(64).chunked(8));
            let h = db.handle();
            let root = arena.alloc(&h.pmem()) as usize;
            let _leaked = arena.alloc(&h.pmem());
            arena.register_root(&h.pmem(), flit_alloc::roots::LIST_HEAD, root);
            drop(h);
            db.sync_pool().unwrap();
        } // dropping the db unmaps the pool
        let (db, report) = FlitDb::open(&path, ht_policy()).unwrap();
        assert_eq!(report.arenas, 1);
        assert!(report.has_root(flit_alloc::roots::LIST_HEAD));
        // `_leaked` was allocated but never published: the GC pass reclaims it.
        assert_eq!(report.leaked_slots(), 1);
        assert_eq!(report.gc.arenas[0].reachable, 1);
        // The adopted arena accepts new traffic.
        let h = db.handle();
        let again = db.arenas()[0].alloc(&h.pmem());
        assert!(!again.is_null());
        drop(h);
        drop(db);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_adopts_the_pools_commit_mode_and_rejects_a_conflicting_one() {
        let path = temp_pool("commit-mode");
        {
            let db = FlitDb::builder(ht_policy())
                .commit_mode(CommitMode::Batched(8))
                .create_pool(&path)
                .unwrap();
            db.sync_pool().unwrap();
        }
        // No explicit mode: adopt what the superblock records.
        {
            let (db, _report) = FlitDb::open(&path, ht_policy()).unwrap();
            assert_eq!(db.commit_mode(), CommitMode::Batched(8));
        }
        // Conflicting explicit mode: typed error, no panic.
        let err = FlitDb::builder(ht_policy())
            .commit_mode(CommitMode::Immediate)
            .open_pool(&path)
            .unwrap_err();
        match err {
            OpenError::CommitModeMismatch { pool, requested } => {
                assert_eq!(pool, Some(CommitMode::Batched(8)));
                assert_eq!(requested, CommitMode::Immediate);
            }
            other => panic!("expected CommitModeMismatch, got {other}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_volatile_is_heap_backed() {
        let db = FlitDb::create_volatile(ht_policy());
        assert!(!db.is_pool_backed());
        assert!(db.pool().is_none());
        db.sync_pool().unwrap();
    }

    #[test]
    fn words_operate_through_a_handle() {
        let db = db();
        let h = db.handle();
        let w = <HtPolicy as Policy>::Word::<u64>::new(1);
        w.store(&h, 9, PFlag::Persisted);
        assert_eq!(w.load(&h, PFlag::Persisted), 9);
        h.operation_completion();
        assert_eq!(db.handles_created(), 1);
    }
}
