//! A copy-on-write persistent **hash array mapped trie** — the workspace's second
//! persistence *discipline*, following MOD ("Minimally Ordered Durable
//! Datastructures for Persistent Memory") rather than FliT's per-word tagging.
//!
//! ## Two persistence disciplines
//!
//! Every other structure in this workspace persists **in place**: each shared
//! word is a `FlitAtomic` whose tagging counter tells racing readers when a
//! store is still in flight so they can help flush it (the FliT protocol). That
//! buys in-place CAS designs durable linearizability at the cost of a flush +
//! fence discipline on *every* shared word.
//!
//! The HAMT inverts the deal. Interior nodes are **immutable once published**:
//! an update builds its whole new path *off to the side* in fresh arena slots,
//! writes the nodes with plain stores, issues `pwb`s for their cache lines
//! (no fence per node), then issues **one** fence and publishes the new trie
//! with a single CAS on the durable **root cell**. Unreachable-until-published
//! nodes need no helping and no tagging, so the crate works against a plain
//! [`FlitHandle`] backend — no `FlitAtomic` anywhere — and the fence count per
//! update is **O(1) in the path length**: one pre-publish fence plus the
//! operation-completion fence, regardless of how deep the trie is. (The `pwb`
//! count still grows with depth — copying is not free — but `pwb`s are
//! asynchronous; fences are the serialising cost the paper's model charges
//! for.)
//!
//! The single mutable persistent word is the root cell. Its durability follows
//! the FliT *spirit* in miniature: the publisher flushes it after the CAS and
//! fences at operation completion, and every operation (readers included)
//! help-flushes the root value it observed via
//! [`pwb_dedup`](flit_pmem::PmemBackend::pwb_dedup), so an operation that
//! observed a fresh root cannot acknowledge before that root is durable.
//!
//! ## Layout
//!
//! Nodes live in one [`flit_alloc::Arena`] with
//! [`ArenaConfig::hamt_nodes`]-shaped slots ([`flit_alloc::HAMT_NODE_SLOT_BYTES`]):
//!
//! * **interior node** — `[header, child₀, …, childₙ₋₁]`: the header's low 16
//!   bits are an occupancy bitmap over the 16 nibble values; children are
//!   packed by popcount rank (bitmap compression), so a node costs
//!   `1 + popcount` words to write and flush.
//! * **leaf** — `[key, value]`.
//! * **entry encoding** — `0` = absent, bit 0 set = interior node at
//!   `enc & !1`, otherwise a leaf at `enc` (slot addresses are word-aligned, so
//!   bit 0 is free).
//!
//! Keys are mixed through a **bijective** finaliser ([`mix_key`], the
//! splitmix64 finaliser), so distinct `u64` keys have distinct 64-bit hashes:
//! with 4-bit branching the trie is at most [`MAX_DEPTH`] levels deep and
//! needs no collision buckets at all.
//!
//! ## Snapshots and retained roots
//!
//! Copy-on-write makes snapshots O(1): [`Hamt::snapshot`] records the current
//! root in a **retained-root table** — a persisted arena block of
//! `(root, refcount, version)` entries registered under
//! [`roots::HAMT_RETAINED`] — so a snapshot *survives crashes*:
//! [`Hamt::recover_snapshots_in_image`] replays each retained entry to exactly
//! its frozen contents, and `post_crash_gc`'s conservative mark (seeded from
//! every registered root, block words included) keeps the pinned paths alive
//! across reopen. [`Snapshot::iter`] and [`Snapshot::range`] walk the frozen
//! trie; iteration order is the deterministic trie order of the mixed hash, so
//! it is stable within one snapshot (and `range` is a filtered full walk —
//! the trie is hash-ordered, not key-ordered).
//!
//! Old paths are reclaimed through EBR ([`Guard::defer`]-based
//! [`Arena::defer_recycle`]) — **unless a snapshot is live**, in which case
//! retired nodes park on a backlog that drains only when the live-snapshot
//! count returns to zero. A snapshot taken after a node was unlinked can never
//! reach it (new roots only share still-linked subtrees), so the conservative
//! backlog policy is safe. Releasing a snapshot (drop) durably zeroes its
//! refcount lazily — best-effort, because a crashed process's snapshots are
//! *supposed* to persist.
//!
//! ## Why the pre-publish fence exists
//!
//! The fence between the path `pwb`s and the publishing CAS is what makes the
//! root cell's value self-certifying across threads: any root another thread
//! can observe points at a fully-durable path. Without it, a concurrent
//! snapshotter could durably retain a root whose nodes were still pending in
//! the *publisher's* persist epoch, and a crash would recover a retained
//! snapshot pointing into nothing. Two fences per update, O(1) in depth,
//! both elision-aware.
//!
//! ## Recovery
//!
//! Recovery is image-only, like every structure here: root table →
//! [`roots::HAMT_ROOT`] cell → persisted root word → node walk entirely through
//! the [`CrashImage`]. A reachable word missing from the image flags
//! `truncated` — the persist-before-publish argument is *checked*, not
//! assumed. The broken control ([`BrokenHamt`]) skips only the root-cell `pwb`
//! after the CAS: every path node is still persisted, but the root never
//! becomes durable, so the structure recovers to its construction-time
//! (empty) state and the crash sweep must flag every acknowledged update as
//! lost.
//!
//! ## Scope
//!
//! The retained-root table holds at most [`RETAINED_CAPACITY`] live snapshots.
//! Under `CommitMode::Batched` the pre-publish fence still runs eagerly (it
//! orders publication, not acknowledgment); only the completion fence is
//! batched.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::ops::RangeBounds;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use flit::{FlitDb, FlitHandle, PFlag, Policy};
use flit_alloc::{roots, Arena, ArenaConfig, HAMT_NODE_SLOT_BYTES};
use flit_datastructs::{ConcurrentMap, MapCrashRecovery, RecoverInImage, RecoveredMap};
use flit_ebr::Guard;
use flit_pmem::{cache_line_of, CrashImage, PmemBackend, CACHE_LINE_SIZE, WORD_SIZE};
use parking_lot::Mutex;

/// Branching factor: one 4-bit nibble of the mixed hash per level.
pub const FANOUT: usize = 16;
const NIBBLE_BITS: u32 = 4;
const BITMAP_MASK: u64 = (1 << FANOUT) - 1;
/// Maximum trie depth: 64 hash bits / 4 bits per level. Because [`mix_key`] is
/// bijective, two distinct keys always diverge at some level above this.
pub const MAX_DEPTH: usize = (u64::BITS / NIBBLE_BITS) as usize;
/// Capacity of the retained-root (snapshot) table.
pub const RETAINED_CAPACITY: usize = 64;
/// Words per retained-root entry: `[root, refcount, version]`.
pub const RETAINED_ENTRY_WORDS: usize = 3;
const RETAINED_BYTES: usize = RETAINED_CAPACITY * RETAINED_ENTRY_WORDS * WORD_SIZE;
const INTERIOR_TAG: u64 = 0b1;

/// The bijective splitmix64 finaliser used to spread keys over the trie.
/// Distinct keys map to distinct hashes, so the trie needs no collision
/// handling and its depth is bounded by [`MAX_DEPTH`].
#[inline]
pub fn mix_key(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn nibble(hash: u64, depth: usize) -> usize {
    ((hash >> (NIBBLE_BITS as usize * depth)) & 0xF) as usize
}

#[inline]
fn is_interior(enc: u64) -> bool {
    enc & INTERIOR_TAG != 0
}

#[inline]
fn addr_of(enc: u64) -> usize {
    (enc & !INTERIOR_TAG) as usize
}

/// Popcount rank of `nib` within `bitmap`: the packed index of that child.
#[inline]
fn rank(bitmap: u64, nib: usize) -> usize {
    (bitmap & ((1u64 << nib) - 1)).count_ones() as usize
}

#[inline]
fn read_word(addr: usize) -> u64 {
    // SAFETY: callers pass word-aligned addresses inside published (immutable)
    // nodes of an arena kept alive by the owning `Hamt`/`Snapshot`.
    unsafe { *(addr as *const u64) }
}

/// Write one word of an *unpublished* node and notify the crash tracker.
#[inline]
fn write_word<B: PmemBackend>(pm: &B, base: *mut u64, idx: usize, val: u64) {
    // SAFETY: in-bounds write inside a freshly allocated, exclusively owned
    // node slot that no other thread can reach before the publishing CAS.
    let p = unsafe { base.add(idx) };
    unsafe { p.write(val) };
    pm.record_store(p as *const u8, val);
}

/// `pwb` every cache line of `[start, start + bytes)` — **no fence**: the MOD
/// discipline persists a whole path with write-backs only and fences once.
#[inline]
fn pwb_range<B: PmemBackend>(pm: &B, start: usize, bytes: usize) {
    let first = cache_line_of(start);
    let last = cache_line_of(start + bytes - 1);
    let mut line = first;
    loop {
        pm.pwb(line as *const u8);
        if line == last {
            break;
        }
        line += CACHE_LINE_SIZE;
    }
}

/// Reclamation bookkeeping shared by updates and snapshots.
struct SnapState {
    /// Live (unreleased) snapshots.
    live: usize,
    /// Node addresses retired while a snapshot was live; drained to the
    /// arena's deferred-recycle path when `live` returns to zero.
    backlog: Vec<usize>,
    /// Monotone version stamped into retained-root entries.
    next_version: u64,
}

/// A copy-on-write hash array mapped trie over `u64` keys and values, durable
/// through the MOD discipline (see the crate docs). All operations take the
/// calling thread's [`FlitHandle`]; the structure shares the owning
/// [`FlitDb`]'s backend and EBR collector.
pub struct Hamt<P: Policy> {
    arena: Arc<Arena>,
    db: FlitDb<P>,
    /// Address of the root cell: one slot whose first word is the entry
    /// encoding of the current trie (0 = empty), registered under
    /// [`roots::HAMT_ROOT`].
    root_cell: usize,
    /// Address of the retained-root table block, registered under
    /// [`roots::HAMT_RETAINED`].
    retained: usize,
    len: AtomicUsize,
    snaps: Mutex<SnapState>,
    /// `false` only in the crash-sweep broken control ([`BrokenHamt`]): skip
    /// the root-cell `pwb` after the publishing CAS.
    flush_root: bool,
}

impl<P: Policy> Hamt<P> {
    /// Create a trie in `db` sized for roughly `capacity_hint` keys.
    pub fn new(db: &FlitDb<P>, capacity_hint: usize) -> Self {
        Self::with_config(db, capacity_hint, db.arena_defaults())
    }

    /// [`Hamt::new`] with an explicit node-arena [`ArenaConfig`]. The slot size
    /// is forced to the HAMT node shape and the chunk slot-count is raised when
    /// needed: a chunk must fit the retained-root table contiguously, and
    /// copy-on-write churns through roughly `depth + 1` slots per update, so
    /// the capacity-derived [`ArenaConfig::hamt_nodes`] floor also applies.
    pub fn with_config(db: &FlitDb<P>, capacity_hint: usize, config: ArenaConfig) -> Self {
        Self::build(db, capacity_hint, config, true)
    }

    fn build(db: &FlitDb<P>, capacity_hint: usize, config: ArenaConfig, flush_root: bool) -> Self {
        let chunk_slots = config
            .slots_per_chunk
            .max(ArenaConfig::hamt_nodes(capacity_hint).slots_per_chunk)
            .max(2 * RETAINED_BYTES.div_ceil(HAMT_NODE_SLOT_BYTES));
        let arena = db.new_arena(config.sized(HAMT_NODE_SLOT_BYTES).chunked(chunk_slots));

        // Construction window: persist the (empty) root cell and the zeroed
        // retained table first, then register the roots — persist before
        // publish at construction scale. A crash anywhere in here recovers to
        // the empty trie (absent root) or the empty trie (persisted zero).
        let h = db.handle();
        let pm = h.pmem();
        let cell = arena.alloc(&pm) as *mut u64;
        write_word(&pm, cell, 0, 0);
        let table = arena.alloc_block(&pm, RETAINED_BYTES) as *mut u64;
        for i in 0..RETAINED_CAPACITY * RETAINED_ENTRY_WORDS {
            write_word(&pm, table, i, 0);
        }
        h.persist_range(cell as *const u8, WORD_SIZE, PFlag::Persisted);
        h.persist_range(table as *const u8, RETAINED_BYTES, PFlag::Persisted);
        arena.register_root(&pm, roots::HAMT_ROOT, cell as usize);
        arena.register_root(&pm, roots::HAMT_RETAINED, table as usize);
        drop(h);

        Self {
            arena,
            db: db.clone(),
            root_cell: cell as usize,
            retained: table as usize,
            len: AtomicUsize::new(0),
            snaps: Mutex::new(SnapState {
                live: 0,
                backlog: Vec::new(),
                next_version: 1,
            }),
            flush_root,
        }
    }

    /// The arena every node (and the retained-root table) lives in.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// Address of the root cell (diagnostics / observability).
    pub fn root_cell_addr(&self) -> usize {
        self.root_cell
    }

    #[inline]
    fn root_ptr(&self) -> &AtomicU64 {
        // SAFETY: the root cell is a live, word-aligned arena slot owned by
        // this structure for its whole lifetime.
        unsafe { &*(self.root_cell as *const AtomicU64) }
    }

    /// Read-side help: flush the observed root value so an operation that
    /// saw a fresh root cannot acknowledge before it is durable. The broken
    /// control skips this too — it must not repair its own skipped flush.
    #[inline]
    fn help_flush_root<B: PmemBackend>(&self, pm: &B, root: u64) {
        if self.flush_root {
            pm.pwb_dedup(self.root_cell as *const u8, root);
        }
    }

    /// Look up `key` in the trie rooted at `enc` (volatile walk over
    /// published — hence immutable — nodes).
    fn lookup(mut enc: u64, hash: u64, key: u64) -> Option<u64> {
        let mut depth = 0;
        while enc != 0 {
            let addr = addr_of(enc);
            if !is_interior(enc) {
                return (read_word(addr) == key).then(|| read_word(addr + WORD_SIZE));
            }
            let bitmap = read_word(addr) & BITMAP_MASK;
            let nib = nibble(hash, depth);
            if bitmap & (1 << nib) == 0 {
                return None;
            }
            enc = read_word(addr + (1 + rank(bitmap, nib)) * WORD_SIZE);
            depth += 1;
        }
        None
    }

    /// Read `key`'s value, help-flushing the observed root (see the crate
    /// docs on the root cell's durability).
    pub fn get(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        let _guard = h.pin();
        let pm = h.pmem();
        let root = self.root_ptr().load(Ordering::Acquire);
        self.help_flush_root(&pm, root);
        let res = Self::lookup(root, mix_key(key), key);
        h.operation_completion();
        res
    }

    fn alloc_node<B: PmemBackend>(&self, pm: &B, new_nodes: &mut Vec<usize>) -> *mut u64 {
        let node = self.arena.alloc(pm) as *mut u64;
        new_nodes.push(node as usize);
        node
    }

    fn new_leaf<B: PmemBackend>(
        &self,
        pm: &B,
        key: u64,
        value: u64,
        new_nodes: &mut Vec<usize>,
    ) -> u64 {
        let leaf = self.alloc_node(pm, new_nodes);
        write_word(pm, leaf, 0, key);
        write_word(pm, leaf, 1, value);
        pwb_range(pm, leaf as usize, 2 * WORD_SIZE);
        leaf as u64
    }

    /// Replace a colliding leaf with the interior chain that separates the two
    /// hashes, sharing the existing leaf by address (structural sharing).
    #[allow(clippy::too_many_arguments)]
    fn split<B: PmemBackend>(
        &self,
        pm: &B,
        old_leaf: u64,
        old_hash: u64,
        key: u64,
        value: u64,
        new_hash: u64,
        depth: usize,
        new_nodes: &mut Vec<usize>,
    ) -> u64 {
        let new_leaf = self.new_leaf(pm, key, value, new_nodes);
        let mut d = depth;
        while nibble(old_hash, d) == nibble(new_hash, d) {
            d += 1;
        }
        debug_assert!(d < MAX_DEPTH, "bijective hashes diverge within 16 nibbles");
        // Two-child node at the diverging level…
        let (no, nn) = (nibble(old_hash, d), nibble(new_hash, d));
        let node = self.alloc_node(pm, new_nodes);
        write_word(pm, node, 0, (1u64 << no) | (1u64 << nn));
        let (first, second) = if no < nn {
            (old_leaf, new_leaf)
        } else {
            (new_leaf, old_leaf)
        };
        write_word(pm, node, 1, first);
        write_word(pm, node, 2, second);
        pwb_range(pm, node as usize, 3 * WORD_SIZE);
        let mut enc = node as u64 | INTERIOR_TAG;
        // …wrapped in single-entry nodes for every shared level above it.
        for dd in (depth..d).rev() {
            let wrap = self.alloc_node(pm, new_nodes);
            write_word(pm, wrap, 0, 1u64 << nibble(new_hash, dd));
            write_word(pm, wrap, 1, enc);
            pwb_range(pm, wrap as usize, 2 * WORD_SIZE);
            enc = wrap as u64 | INTERIOR_TAG;
        }
        enc
    }

    /// Build the copy-on-write path for inserting `(key, value)` under `enc`.
    /// Returns the new entry encoding, or `None` when the key is already
    /// present (inserts never overwrite). Every allocated node is fully
    /// written, recorded, and `pwb`-ed before this returns; no fence is
    /// issued.
    #[allow(clippy::too_many_arguments)]
    fn cow_insert<B: PmemBackend>(
        &self,
        pm: &B,
        enc: u64,
        hash: u64,
        key: u64,
        value: u64,
        depth: usize,
        new_nodes: &mut Vec<usize>,
        old_nodes: &mut Vec<usize>,
    ) -> Option<u64> {
        if enc == 0 {
            return Some(self.new_leaf(pm, key, value, new_nodes));
        }
        let addr = addr_of(enc);
        if !is_interior(enc) {
            let k0 = read_word(addr);
            if k0 == key {
                return None;
            }
            return Some(self.split(pm, enc, mix_key(k0), key, value, hash, depth, new_nodes));
        }
        let bitmap = read_word(addr) & BITMAP_MASK;
        let nib = nibble(hash, depth);
        let bit = 1u64 << nib;
        let child = if bitmap & bit != 0 {
            read_word(addr + (1 + rank(bitmap, nib)) * WORD_SIZE)
        } else {
            0
        };
        let new_child =
            self.cow_insert(pm, child, hash, key, value, depth + 1, new_nodes, old_nodes)?;
        let node = self.alloc_node(pm, new_nodes);
        let new_bitmap = bitmap | bit;
        write_word(pm, node, 0, new_bitmap);
        let mut w = 1;
        for i in 0..FANOUT {
            if new_bitmap & (1 << i) == 0 {
                continue;
            }
            let v = if i == nib {
                new_child
            } else {
                read_word(addr + (1 + rank(bitmap, i)) * WORD_SIZE)
            };
            write_word(pm, node, w, v);
            w += 1;
        }
        pwb_range(pm, node as usize, w * WORD_SIZE);
        old_nodes.push(addr);
        Some(node as u64 | INTERIOR_TAG)
    }

    /// Build the copy-on-write path for removing `key` under `enc`. Returns
    /// the new entry encoding (`0` when the subtree vanishes), or `None` when
    /// the key is absent. Single-leaf interiors contract to the leaf itself.
    #[allow(clippy::too_many_arguments)]
    fn cow_remove<B: PmemBackend>(
        &self,
        pm: &B,
        enc: u64,
        hash: u64,
        key: u64,
        depth: usize,
        new_nodes: &mut Vec<usize>,
        old_nodes: &mut Vec<usize>,
    ) -> Option<u64> {
        if enc == 0 {
            return None;
        }
        let addr = addr_of(enc);
        if !is_interior(enc) {
            if read_word(addr) != key {
                return None;
            }
            old_nodes.push(addr);
            return Some(0);
        }
        let bitmap = read_word(addr) & BITMAP_MASK;
        let nib = nibble(hash, depth);
        let bit = 1u64 << nib;
        if bitmap & bit == 0 {
            return None;
        }
        let child = read_word(addr + (1 + rank(bitmap, nib)) * WORD_SIZE);
        let new_child = self.cow_remove(pm, child, hash, key, depth + 1, new_nodes, old_nodes)?;
        old_nodes.push(addr);
        if new_child == 0 {
            let new_bitmap = bitmap & !bit;
            let count = new_bitmap.count_ones() as usize;
            if count == 0 {
                return Some(0);
            }
            if count == 1 {
                let only_nib = new_bitmap.trailing_zeros() as usize;
                let only = read_word(addr + (1 + rank(bitmap, only_nib)) * WORD_SIZE);
                if !is_interior(only) {
                    // Contract: hoist the sole remaining leaf (interiors
                    // cannot hoist — their children are indexed by depth).
                    return Some(only);
                }
            }
            let node = self.alloc_node(pm, new_nodes);
            write_word(pm, node, 0, new_bitmap);
            let mut w = 1;
            for i in 0..FANOUT {
                if new_bitmap & (1 << i) == 0 {
                    continue;
                }
                write_word(
                    pm,
                    node,
                    w,
                    read_word(addr + (1 + rank(bitmap, i)) * WORD_SIZE),
                );
                w += 1;
            }
            pwb_range(pm, node as usize, (1 + count) * WORD_SIZE);
            Some(node as u64 | INTERIOR_TAG)
        } else {
            if bitmap.count_ones() == 1 && !is_interior(new_child) {
                // The child contracted to a leaf and it is our only entry:
                // keep contracting.
                return Some(new_child);
            }
            let node = self.alloc_node(pm, new_nodes);
            write_word(pm, node, 0, bitmap);
            let mut w = 1;
            for i in 0..FANOUT {
                if bitmap & (1 << i) == 0 {
                    continue;
                }
                let v = if i == nib {
                    new_child
                } else {
                    read_word(addr + (1 + rank(bitmap, i)) * WORD_SIZE)
                };
                write_word(pm, node, w, v);
                w += 1;
            }
            pwb_range(
                pm,
                node as usize,
                (1 + bitmap.count_ones() as usize) * WORD_SIZE,
            );
            Some(node as u64 | INTERIOR_TAG)
        }
    }

    /// Retire the replaced path nodes: straight to the arena's deferred
    /// recycle when no snapshot is live, onto the backlog otherwise.
    fn retire(&self, guard: &Guard<'_>, old_nodes: &[usize]) {
        if old_nodes.is_empty() {
            return;
        }
        let mut st = self.snaps.lock();
        if st.live == 0 {
            for &a in old_nodes {
                // SAFETY: `a` was just unlinked from the published trie by a
                // successful root CAS; only EBR-pinned traversals of older
                // roots can still reach it, which `defer_recycle` waits out.
                unsafe { self.arena.defer_recycle(guard, a) };
            }
        } else {
            st.backlog.extend_from_slice(old_nodes);
        }
    }

    /// Publish `new_root`: a single pre-publish fence for the whole path, the
    /// CAS, then the root-cell flush (skipped by the broken control). Returns
    /// `false` when the CAS lost and the caller must rebuild.
    fn publish<B: PmemBackend>(&self, pm: &B, expected: u64, new_root: u64) -> bool {
        pm.pfence_if_dirty();
        if self
            .root_ptr()
            .compare_exchange(expected, new_root, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        pm.record_store(self.root_cell as *const u8, new_root);
        if self.flush_root {
            pm.pwb(self.root_cell as *const u8);
        }
        true
    }

    /// Insert `(key, value)`; returns `false` (and stores nothing) when the
    /// key is already present.
    pub fn insert(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        let guard = h.pin();
        let pm = h.pmem();
        let hash = mix_key(key);
        loop {
            let root = self.root_ptr().load(Ordering::Acquire);
            self.help_flush_root(&pm, root);
            let mut new_nodes = Vec::new();
            let mut old_nodes = Vec::new();
            let Some(new_root) = self.cow_insert(
                &pm,
                root,
                hash,
                key,
                value,
                0,
                &mut new_nodes,
                &mut old_nodes,
            ) else {
                h.operation_completion();
                return false;
            };
            if self.publish(&pm, root, new_root) {
                self.retire(&guard, &old_nodes);
                self.len.fetch_add(1, Ordering::Relaxed);
                h.operation_completion();
                return true;
            }
            for &n in &new_nodes {
                // SAFETY: the CAS lost, so these freshly built nodes were
                // never published; no other thread can hold a reference.
                unsafe { self.arena.recycle(n as *mut u8) };
            }
        }
    }

    /// Remove `key`; returns `false` when it was absent.
    pub fn remove(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        let guard = h.pin();
        let pm = h.pmem();
        let hash = mix_key(key);
        loop {
            let root = self.root_ptr().load(Ordering::Acquire);
            self.help_flush_root(&pm, root);
            let mut new_nodes = Vec::new();
            let mut old_nodes = Vec::new();
            let Some(new_root) =
                self.cow_remove(&pm, root, hash, key, 0, &mut new_nodes, &mut old_nodes)
            else {
                h.operation_completion();
                return false;
            };
            if self.publish(&pm, root, new_root) {
                self.retire(&guard, &old_nodes);
                self.len.fetch_sub(1, Ordering::Relaxed);
                h.operation_completion();
                return true;
            }
            for &n in &new_nodes {
                // SAFETY: the CAS lost; the nodes were never published.
                unsafe { self.arena.recycle(n as *mut u8) };
            }
        }
    }

    /// Quiescent size (volatile counter, like the other structures).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when [`len`](Self::len) is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn retained_entry(&self, slot: usize) -> usize {
        self.retained + slot * RETAINED_ENTRY_WORDS * WORD_SIZE
    }

    /// Freeze the current trie: claim a retained-root entry, persist it, and
    /// return a [`Snapshot`] over the frozen contents. The entry — and with it
    /// the pinned path, through the conservative post-crash GC mark — survives
    /// a crash until explicitly released.
    ///
    /// # Panics
    /// When all [`RETAINED_CAPACITY`] entries are live.
    pub fn snapshot<'t>(&'t self, h: &FlitHandle<'_, P>) -> Snapshot<'t, P> {
        let pm = h.pmem();
        let mut st = self.snaps.lock();
        let root = self.root_ptr().load(Ordering::Acquire);
        self.help_flush_root(&pm, root);
        let slot = (0..RETAINED_CAPACITY)
            .find(|&i| read_word(self.retained_entry(i) + WORD_SIZE) == 0)
            .expect("retained-root table full: release a snapshot before taking another");
        let version = st.next_version;
        st.next_version += 1;
        let base = self.retained_entry(slot) as *mut u64;
        // Entry becomes durable atomically at our completion fence: root and
        // version are flushed alongside the refcount that validates them.
        write_word(&pm, base, 0, root);
        write_word(&pm, base, 2, version);
        write_word(&pm, base, 1, 1);
        pwb_range(&pm, base as usize, RETAINED_ENTRY_WORDS * WORD_SIZE);
        st.live += 1;
        drop(st);
        h.operation_completion();
        Snapshot {
            hamt: self,
            root,
            slot,
            version,
        }
    }

    /// Release the retained entry behind a dropped snapshot and drain the
    /// reclamation backlog when this was the last live snapshot.
    fn release_slot(&self, slot: usize) {
        let mut st = self.snaps.lock();
        let rc = (self.retained_entry(slot) + WORD_SIZE) as *mut u64;
        // SAFETY: in-bounds word of the retained table, mutated only under
        // the `snaps` lock.
        unsafe { rc.write(0) };
        let b = self.db.backend();
        b.record_store(rc as *const u8, 0);
        // Best-effort durability: the zero rides to persistence on whichever
        // fence next commits this line. A crash that loses it merely leaves a
        // stale retained entry pinning a dead trie until released post-reopen.
        b.pwb(rc as *const u8);
        st.live -= 1;
        if st.live == 0 && !st.backlog.is_empty() {
            let local = self.db.collector().register();
            let guard = local.pin();
            for a in st.backlog.drain(..) {
                // SAFETY: backlogged nodes were unlinked from the published
                // trie before being parked; the last pinning snapshot is gone.
                unsafe { self.arena.defer_recycle(&guard, a) };
            }
        }
    }

    /// Live retained-root entries `(slot, version, root_encoding)` — the
    /// volatile view of what [`Hamt::recover_snapshots_in_image`] would
    /// recover (diagnostics / observability).
    pub fn retained_roots(&self) -> Vec<(usize, u64, u64)> {
        let _st = self.snaps.lock();
        (0..RETAINED_CAPACITY)
            .filter_map(|slot| {
                let base = self.retained_entry(slot);
                (read_word(base + WORD_SIZE) != 0)
                    .then(|| (slot, read_word(base + 2 * WORD_SIZE), read_word(base)))
            })
            .collect()
    }

    /// Reconstruct the durable map purely from the crash image and the arena's
    /// root table: [`roots::HAMT_ROOT`] cell → persisted root word → node
    /// walk, every word read from the image. An absent root recovers to the
    /// empty map; a reachable-but-unpersisted word flags `truncated`.
    pub fn recover_in_image(arena: &Arena, image: &CrashImage) -> RecoveredMap {
        let mut rec = RecoveredMap::default();
        let Some(cell) = arena.root_in_image(image, roots::HAMT_ROOT) else {
            return rec;
        };
        let Some(root) = image.read(cell) else {
            rec.truncated = true;
            return rec;
        };
        walk_enc_in_image(arena, image, root, 0, &mut rec);
        rec
    }

    /// Image-only recovery through this trie's own arena; see
    /// [`recover_in_image`](Self::recover_in_image).
    pub fn recover(&self, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(&self.arena, image)
    }

    /// Replay every durably retained snapshot out of the crash image: each
    /// entry of the [`roots::HAMT_RETAINED`] table with a persisted non-zero
    /// refcount yields its frozen contents. This is the crash-surviving half
    /// of the snapshot contract.
    pub fn recover_snapshots_in_image(arena: &Arena, image: &CrashImage) -> Vec<RetainedSnapshot> {
        let Some(table) = arena.root_in_image(image, roots::HAMT_RETAINED) else {
            return Vec::new();
        };
        (0..RETAINED_CAPACITY)
            .filter_map(|slot| {
                let base = table + slot * RETAINED_ENTRY_WORDS * WORD_SIZE;
                let root = image.read(base)?;
                if image.read(base + WORD_SIZE)? == 0 {
                    return None;
                }
                let version = image.read(base + 2 * WORD_SIZE)?;
                let mut rec = RecoveredMap::default();
                walk_enc_in_image(arena, image, root, 0, &mut rec);
                Some(RetainedSnapshot { slot, version, rec })
            })
            .collect()
    }
}

/// A durably retained snapshot replayed from a crash image by
/// [`Hamt::recover_snapshots_in_image`].
#[derive(Debug, Clone)]
pub struct RetainedSnapshot {
    /// Index of the retained-root table entry.
    pub slot: usize,
    /// The version stamped when the snapshot was taken.
    pub version: u64,
    /// The frozen contents (with `truncated` flagging an unpersisted path —
    /// a durability bug, since retained entries are only durable after the
    /// pinned path is).
    pub rec: RecoveredMap,
}

fn walk_enc_in_image(
    arena: &Arena,
    image: &CrashImage,
    enc: u64,
    depth: usize,
    rec: &mut RecoveredMap,
) {
    if enc == 0 {
        return;
    }
    if depth > MAX_DEPTH {
        rec.truncated = true;
        return;
    }
    let addr = addr_of(enc);
    if arena.offset_of_addr(addr).is_none() {
        rec.truncated = true;
        return;
    }
    if !is_interior(enc) {
        match (image.read(addr), image.read(addr + WORD_SIZE)) {
            (Some(k), Some(v)) => rec.pairs.push((k, v)),
            _ => rec.truncated = true,
        }
        return;
    }
    let Some(hdr) = image.read(addr) else {
        rec.truncated = true;
        return;
    };
    let count = (hdr & BITMAP_MASK).count_ones() as usize;
    for i in 0..count {
        let Some(child) = image.read(addr + (1 + i) * WORD_SIZE) else {
            rec.truncated = true;
            return;
        };
        walk_enc_in_image(arena, image, child, depth + 1, rec);
    }
}

/// A frozen view of the trie pinned by a retained-root entry. Reads cost no
/// fences; iteration order is the deterministic trie order, stable for the
/// snapshot's lifetime. Dropping releases the entry and un-pins the frozen
/// path.
pub struct Snapshot<'t, P: Policy> {
    hamt: &'t Hamt<P>,
    root: u64,
    slot: usize,
    version: u64,
}

impl<'t, P: Policy> Snapshot<'t, P> {
    /// The monotone version stamped when this snapshot was taken.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Index of the retained-root table entry pinning this snapshot.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Read `key` out of the frozen trie.
    pub fn get(&self, key: u64) -> Option<u64> {
        Hamt::<P>::lookup(self.root, mix_key(key), key)
    }

    /// Walk the frozen trie in trie (mixed-hash) order.
    pub fn iter(&self) -> SnapshotIter<'_> {
        SnapshotIter::new(self.root)
    }

    /// All `(key, value)` pairs whose key lies in `bounds`, in trie order.
    /// The trie is hash-ordered, so this is a filtered full walk — O(n), not
    /// O(log n + k).
    pub fn range<R: RangeBounds<u64> + 'static>(
        &self,
        bounds: R,
    ) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.iter().filter(move |(k, _)| bounds.contains(k))
    }
}

impl<P: Policy> Drop for Snapshot<'_, P> {
    fn drop(&mut self) {
        self.hamt.release_slot(self.slot);
    }
}

impl<'s, P: Policy> IntoIterator for &'s Snapshot<'_, P> {
    type Item = (u64, u64);
    type IntoIter = SnapshotIter<'s>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a [`Snapshot`]'s frozen pairs in trie order.
pub struct SnapshotIter<'s> {
    /// `(node address, entry count, next entry index)` per open interior node.
    stack: Vec<(usize, usize, usize)>,
    /// Set when the snapshot root is itself a leaf (or empty).
    root_leaf: Option<u64>,
    _snapshot: std::marker::PhantomData<&'s ()>,
}

impl SnapshotIter<'_> {
    fn new(root: u64) -> Self {
        let mut it = SnapshotIter {
            stack: Vec::new(),
            root_leaf: None,
            _snapshot: std::marker::PhantomData,
        };
        if root == 0 {
            return it;
        }
        if is_interior(root) {
            let addr = addr_of(root);
            let count = (read_word(addr) & BITMAP_MASK).count_ones() as usize;
            it.stack.push((addr, count, 0));
        } else {
            it.root_leaf = Some(root);
        }
        it
    }
}

impl Iterator for SnapshotIter<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if let Some(leaf) = self.root_leaf.take() {
            let addr = addr_of(leaf);
            return Some((read_word(addr), read_word(addr + WORD_SIZE)));
        }
        loop {
            let (addr, count, idx) = self.stack.last_mut()?;
            if idx == count {
                self.stack.pop();
                continue;
            }
            let entry = read_word(*addr + (1 + *idx) * WORD_SIZE);
            *idx += 1;
            if is_interior(entry) {
                let child = addr_of(entry);
                let ccount = (read_word(child) & BITMAP_MASK).count_ones() as usize;
                self.stack.push((child, ccount, 0));
                continue;
            }
            let leaf = entry as usize;
            return Some((read_word(leaf), read_word(leaf + WORD_SIZE)));
        }
    }
}

impl<P: Policy> ConcurrentMap<P> for Hamt<P> {
    const NAME: &'static str = "hamt";

    fn with_capacity(db: &FlitDb<P>, capacity_hint: usize) -> Self {
        Self::new(db, capacity_hint)
    }

    fn with_capacity_cfg(db: &FlitDb<P>, capacity_hint: usize, config: ArenaConfig) -> Self {
        Self::with_config(db, capacity_hint, config)
    }

    fn get(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        Hamt::get(self, h, key)
    }

    fn insert(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        Hamt::insert(self, h, key, value)
    }

    fn remove(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        Hamt::remove(self, h, key)
    }

    fn len(&self) -> usize {
        Hamt::len(self)
    }

    fn db(&self) -> &FlitDb<P> {
        &self.db
    }

    /// Served from a real [`Snapshot`]: take one, walk the frozen trie, keep
    /// the matching pairs, release the retained root on return.
    fn snapshot_scan(
        &self,
        h: &FlitHandle<'_, P>,
        prefix: u64,
        mask: u64,
    ) -> Option<Vec<(u64, u64)>> {
        let snap = self.snapshot(h);
        let mut pairs: Vec<(u64, u64)> = snap
            .iter()
            .filter(|(k, _)| k & mask == prefix & mask)
            .collect();
        pairs.sort_unstable();
        Some(pairs)
    }
}

impl<P: Policy> MapCrashRecovery<P> for Hamt<P> {
    fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        self.recover(image)
    }
}

impl<P: Policy> RecoverInImage for Hamt<P> {
    const ROOT_KEY: u64 = roots::HAMT_ROOT;

    fn recover_arena_image(arena: &Arena, image: &CrashImage) -> RecoveredMap {
        Self::recover_in_image(arena, image)
    }
}

/// The crash-sweep **broken control**: a [`Hamt`] that skips only the
/// root-cell `pwb` after the publishing CAS. Every node of every path is still
/// persisted, but the root word never becomes durable, so the structure always
/// recovers to its construction-time (empty) state and the sweep must flag
/// every acknowledged update as lost.
pub struct BrokenHamt<P: Policy>(Hamt<P>);

impl<P: Policy> BrokenHamt<P> {
    /// The underlying (sabotaged) trie.
    pub fn inner(&self) -> &Hamt<P> {
        &self.0
    }
}

impl<P: Policy> ConcurrentMap<P> for BrokenHamt<P> {
    const NAME: &'static str = "hamt-noflush";

    fn with_capacity(db: &FlitDb<P>, capacity_hint: usize) -> Self {
        Self::with_capacity_cfg(db, capacity_hint, db.arena_defaults())
    }

    fn with_capacity_cfg(db: &FlitDb<P>, capacity_hint: usize, config: ArenaConfig) -> Self {
        BrokenHamt(Hamt::build(db, capacity_hint, config, false))
    }

    fn get(&self, h: &FlitHandle<'_, P>, key: u64) -> Option<u64> {
        self.0.get(h, key)
    }

    fn insert(&self, h: &FlitHandle<'_, P>, key: u64, value: u64) -> bool {
        self.0.insert(h, key, value)
    }

    fn remove(&self, h: &FlitHandle<'_, P>, key: u64) -> bool {
        self.0.remove(h, key)
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn db(&self) -> &FlitDb<P> {
        &self.0.db
    }
}

impl<P: Policy> MapCrashRecovery<P> for BrokenHamt<P> {
    fn recover_from_image(&self, image: &CrashImage) -> RecoveredMap {
        self.0.recover(image)
    }
}

impl<P: Policy> RecoverInImage for BrokenHamt<P> {
    const ROOT_KEY: u64 = roots::HAMT_ROOT;

    fn recover_arena_image(arena: &Arena, image: &CrashImage) -> RecoveredMap {
        Hamt::<P>::recover_in_image(arena, image)
    }
}

/// Extension constructor on [`FlitDb`]: `db.hamt(capacity)`. (A trait rather
/// than an inherent method because `flit` cannot depend on this crate.)
pub trait HamtExt<P: Policy> {
    /// Create a [`Hamt`] in this database sized for roughly `capacity_hint`
    /// keys.
    fn hamt(&self, capacity_hint: usize) -> Hamt<P>;
}

impl<P: Policy> HamtExt<P> for FlitDb<P> {
    fn hamt(&self, capacity_hint: usize) -> Hamt<P> {
        Hamt::new(self, capacity_hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flit::{FlitPolicy, HashedScheme};
    use flit_pmem::{LatencyModel, SimNvram};

    type P = FlitPolicy<HashedScheme, SimNvram>;

    fn backend() -> SimNvram {
        SimNvram::builder().latency(LatencyModel::none()).build()
    }

    fn db() -> FlitDb<P> {
        FlitDb::flit_ht(backend())
    }

    #[test]
    fn mix_is_bijective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(mix_key(k)));
        }
    }

    #[test]
    fn basic_map_semantics() {
        let db = db();
        let h = db.handle();
        let t = db.hamt(256);
        assert!(t.is_empty());
        assert!(t.insert(&h, 1, 10));
        assert!(t.insert(&h, 2, 20));
        assert!(!t.insert(&h, 1, 99), "inserts never overwrite");
        assert_eq!(t.get(&h, 1), Some(10));
        assert_eq!(t.get(&h, 3), None);
        assert!(t.remove(&h, 1));
        assert!(!t.remove(&h, 1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_keys_and_contraction() {
        let db = db();
        let h = db.handle();
        let t = db.hamt(128);
        for k in 0..2000u64 {
            assert!(t.insert(&h, k, 3 * k + 1));
        }
        assert_eq!(t.len(), 2000);
        for k in 0..2000u64 {
            assert_eq!(t.get(&h, k), Some(3 * k + 1));
        }
        // Remove everything: contraction must keep lookups correct all the
        // way down to the empty trie.
        for k in 0..2000u64 {
            assert!(t.remove(&h, k));
            assert_eq!(t.get(&h, k), None);
        }
        assert!(t.is_empty());
        assert_eq!(t.root_ptr().load(Ordering::Relaxed), 0);
    }

    #[test]
    fn durable_state_recovers_from_the_image() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let t = db.hamt(64);
        for k in 0..40u64 {
            assert!(t.insert(&h, k, k + 7));
        }
        assert!(t.remove(&h, 3));
        let image = sim.tracker().unwrap().crash_image();
        let rec = t.recover(&image);
        assert!(!rec.truncated);
        let expected: Vec<(u64, u64)> =
            (0..40u64).filter(|k| *k != 3).map(|k| (k, k + 7)).collect();
        assert_eq!(rec.sorted_pairs(), expected);
        let rec2 = Hamt::<P>::recover_in_image(t.arena(), &image);
        assert_eq!(rec2.sorted_pairs(), expected);
    }

    #[test]
    fn broken_control_recovers_to_empty() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let t: BrokenHamt<P> = BrokenHamt::with_capacity(&db, 64);
        for k in 0..20u64 {
            assert!(t.insert(&h, k, k));
        }
        let image = sim.tracker().unwrap().crash_image();
        let rec = t.recover_from_image(&image);
        assert!(rec.pairs.is_empty(), "unflushed root must not recover");
        assert!(!rec.truncated);
    }

    #[test]
    fn snapshots_freeze_contents_and_iterate_stably() {
        let db = db();
        let h = db.handle();
        let t = db.hamt(64);
        for k in 0..50u64 {
            t.insert(&h, k, k * 2);
        }
        let snap = t.snapshot(&h);
        // Mutate after the snapshot: the frozen view must not move.
        for k in 50..80u64 {
            t.insert(&h, k, k * 2);
        }
        for k in (0..50u64).step_by(5) {
            t.remove(&h, k);
        }
        let first: Vec<(u64, u64)> = snap.iter().collect();
        let second: Vec<(u64, u64)> = snap.iter().collect();
        assert_eq!(first, second, "iteration order is stable within a snapshot");
        let mut sorted = first.clone();
        sorted.sort_unstable();
        let expected: Vec<(u64, u64)> = (0..50u64).map(|k| (k, k * 2)).collect();
        assert_eq!(sorted, expected);
        assert_eq!(snap.get(5), Some(10), "frozen read ignores later remove");
        let in_range: Vec<(u64, u64)> = {
            let mut v: Vec<_> = snap.range(10..20).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            in_range,
            (10..20u64).map(|k| (k, k * 2)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn snapshot_slots_recycle_after_release() {
        let db = db();
        let h = db.handle();
        let t = db.hamt(16);
        t.insert(&h, 1, 1);
        for _ in 0..3 * RETAINED_CAPACITY {
            let s = t.snapshot(&h);
            assert_eq!(s.get(1), Some(1));
        }
        assert!(t.retained_roots().is_empty());
    }

    #[test]
    fn retained_snapshots_survive_in_the_image() {
        let sim = SimNvram::for_crash_testing();
        let db = FlitDb::flit_ht(sim.clone());
        let h = db.handle();
        let t = db.hamt(64);
        for k in 0..30u64 {
            t.insert(&h, k, k + 1);
        }
        let snap = t.snapshot(&h);
        let frozen: Vec<(u64, u64)> = {
            let mut v: Vec<_> = snap.iter().collect();
            v.sort_unstable();
            v
        };
        // Keep mutating past the snapshot; the retained entry must replay to
        // exactly the frozen contents.
        for k in 30..60u64 {
            t.insert(&h, k, k + 1);
        }
        for k in 0..10u64 {
            t.remove(&h, k);
        }
        let image = sim.tracker().unwrap().crash_image();
        let retained = Hamt::<P>::recover_snapshots_in_image(t.arena(), &image);
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].slot, snap.slot());
        assert_eq!(retained[0].version, snap.version());
        assert!(!retained[0].rec.truncated);
        assert_eq!(retained[0].rec.sorted_pairs(), frozen);
        // A released snapshot disappears from later images.
        drop(snap);
        let h2 = db.handle();
        t.insert(&h2, 1000, 1);
        drop(h2);
        let image2 = sim.tracker().unwrap().crash_image();
        assert!(Hamt::<P>::recover_snapshots_in_image(t.arena(), &image2).is_empty());
    }

    #[test]
    fn concurrent_mixed_workload() {
        let db = db();
        let t = Arc::new(db.hamt(512));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                let db = &db;
                s.spawn(move || {
                    let h = db.handle();
                    let base = tid * 1000;
                    for k in base..base + 300 {
                        assert!(t.insert(&h, k, k));
                    }
                    for k in base..base + 300 {
                        assert_eq!(t.get(&h, k), Some(k));
                    }
                    for k in (base..base + 300).step_by(2) {
                        assert!(t.remove(&h, k));
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 150);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum MapOp {
            Insert(u64, u64),
            Remove(u64),
            Get(u64),
        }

        fn op_strategy() -> impl Strategy<Value = MapOp> {
            // A small key universe provokes collisions on low nibbles, splits
            // and contractions.
            prop_oneof![
                (0u64..32, 0u64..1000).prop_map(|(k, v)| MapOp::Insert(k, v)),
                (0u64..32).prop_map(MapOp::Remove),
                (0u64..32).prop_map(MapOp::Get),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn hamt_matches_std_hashmap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
                let db = db();
                let h = db.handle();
                let t = db.hamt(32);
                let mut model = std::collections::HashMap::new();
                for op in ops {
                    match op {
                        MapOp::Insert(k, v) => {
                            let inserted = t.insert(&h, k, v);
                            let expected = !model.contains_key(&k);
                            if expected {
                                model.insert(k, v);
                            }
                            prop_assert_eq!(inserted, expected);
                        }
                        MapOp::Remove(k) => {
                            prop_assert_eq!(t.remove(&h, k), model.remove(&k).is_some());
                        }
                        MapOp::Get(k) => {
                            prop_assert_eq!(t.get(&h, k), model.get(&k).copied());
                        }
                    }
                }
                prop_assert_eq!(t.len(), model.len());
                // A snapshot's iteration agrees with the model and is stable.
                let snap = t.snapshot(&h);
                let mut pairs: Vec<(u64, u64)> = snap.iter().collect();
                let again: Vec<(u64, u64)> = snap.iter().collect();
                prop_assert_eq!(&pairs, &again);
                pairs.sort_unstable();
                let mut expected: Vec<(u64, u64)> = model.into_iter().collect();
                expected.sort_unstable();
                prop_assert_eq!(pairs, expected);
            }
        }
    }
}
