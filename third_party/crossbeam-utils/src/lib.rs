//! Offline stand-in for the `crossbeam-utils` crate.
//!
//! Provides [`CachePadded`], the only item this workspace uses: a wrapper that
//! aligns (and therefore pads) its contents to a boundary large enough to avoid
//! false sharing between adjacent values. 128 bytes covers the adjacent-line
//! prefetcher pairs on modern x86-64 (the same value the real crate uses there).

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes so that two neighbouring `CachePadded` values
/// never share a cache line (or a prefetched pair of lines).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_separates_neighbours() {
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        let pair = [CachePadded::new(1u64), CachePadded::new(2u64)];
        let a = &*pair[0] as *const u64 as usize;
        let b = &*pair[1] as *const u64 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(7u32);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
