//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking surface this workspace's benches use — groups,
//! `bench_function`, `Bencher::iter`, the `criterion_group!`/`criterion_main!`
//! macros — with a plain wall-clock measurement loop: warm up for the configured
//! warm-up time, then measure for the configured measurement time, then print the
//! mean ns/iter. No statistical analysis, outlier detection, plots or baseline
//! comparison; for regression tracking, diff the printed table between runs.
//!
//! Bench targets must set `harness = false` in `Cargo.toml` (as with the real
//! criterion), since [`criterion_main!`] defines `main`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Upper bound on measured iterations per benchmark, so accidentally-instant
/// closures cannot spin for billions of iterations.
const MAX_ITERS: u64 = 1_000_000;

/// The benchmark context handed to the functions listed in [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Accepted for call-compatibility with the real criterion; this shim has no
    /// command-line options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {}", name.as_ref());
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_bench(id.as_ref(), self.warm_up, self.measurement, f);
        self
    }
}

/// A group of benchmarks sharing sample configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's measurement loop is time-bounded, not
    /// sample-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Time spent measuring.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_bench(&label, self.warm_up, self.measurement, f);
        self
    }

    /// End the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        warm_up,
        measurement,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {label:<48} (no iterations run)");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    println!(
        "  {label:<48} {ns:>12.1} ns/iter  ({} iters)",
        bencher.iters
    );
}

/// Runs the benchmarked closure and records timing.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly: first for the warm-up period, then for the measurement
    /// period (at most a fixed iteration cap), recording the measured time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std::hint::black_box(f());
        }

        let start = Instant::now();
        let measure_end = start + self.measurement;
        let mut iters = 0u64;
        while iters < MAX_ITERS && Instant::now() < measure_end {
            // Batch 16 iterations per clock check to keep timer overhead small.
            for _ in 0..16 {
                std::hint::black_box(f());
            }
            iters += 16;
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }
}

/// Collect benchmark functions into one runner function, mirroring the real
/// criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut counter = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                counter += 1;
                counter
            })
        });
        group.finish();
        assert!(counter > 0);
    }

    #[test]
    fn group_ids_accept_str_and_string() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
        };
        let label = String::from("owned");
        let mut group = c.benchmark_group(format!("g/{label}"));
        group.bench_function(&label, |b| b.iter(|| 1 + 1));
        group.bench_function("literal", |b| b.iter(|| 2 + 2));
        group.finish();
    }
}
