//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides the two types this workspace uses — [`Mutex`] and [`RwLock`] with
//! `parking_lot`'s non-poisoning signatures — implemented over their `std::sync`
//! counterparts. The real crate is faster under contention; the call sites here
//! (the persistence tracker's shard locks, the arena allocator's chunk table) only
//! require the API shape, so the std implementation is a faithful substitute.
//! Swapping the real crate back in is a one-line `Cargo.toml` change.

#![warn(missing_docs)]

use std::sync::TryLockError;

/// A mutual-exclusion lock with `parking_lot`'s API: `lock()` returns the guard
/// directly (a poisoned std mutex is recovered transparently, matching
/// `parking_lot`'s no-poisoning semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] and [`Mutex::try_lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never panics on poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock with `parking_lot`'s API: `read()`/`write()` return their
/// guards directly (a poisoned std lock is recovered transparently, matching
/// `parking_lot`'s no-poisoning semantics).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available. Never panics on
    /// poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive write access, blocking until available. Never panics on
    /// poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(7);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 14);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: no poisoning observable by later lockers.
        assert_eq!(*m.lock(), 1);
    }
}
