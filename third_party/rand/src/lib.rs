//! Offline stand-in for the `rand` crate.
//!
//! The reproduction container has no network access, so the workspace vendors the
//! tiny RNG surface it actually uses instead of depending on crates.io:
//!
//! * [`rngs::SmallRng`] — a small, fast, *non-cryptographic* generator
//!   (xoshiro256++, the same family the real `SmallRng` uses on 64-bit targets);
//! * [`SeedableRng::seed_from_u64`] — deterministic seeding, used by the workload
//!   generator so every benchmark run is reproducible;
//! * [`Rng::gen_range`] over half-open integer ranges.
//!
//! The API is call-compatible with `rand 0.8` for these items, so swapping the real
//! crate back in (on a networked machine) is a one-line `Cargo.toml` change. Streams
//! produced by this shim differ from the real `rand` — only determinism per seed is
//! promised, which is all the workload harness relies on.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open integer ranges only).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<G: RngCore> Rng for G {}

/// A range of values that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

/// Multiply-shift rejection-free bounded sampling (Lemire). The slight modulo bias of
/// simpler schemes would be harmless for these workloads, but this is just as cheap.
#[inline]
fn bounded(rng_word: u64, span: u64) -> u64 {
    ((rng_word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_sample_range!(u64, u32, u16, u8, usize);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small-state generator family the real `rand::rngs::SmallRng`
    /// uses on 64-bit platforms. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand the one-word seed into the full state.
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0..3u32);
            assert!(y < 3);
            let z = rng.gen_range(0..100usize);
            assert!(z < 100);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
