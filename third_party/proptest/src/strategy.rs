//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike the real proptest, a strategy
/// here generates values directly (no intermediate value trees, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`prop_oneof!`](crate::prop_oneof) combinator: choose an arm uniformly, then
/// generate from it.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u64, u32, u16, u8, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_and_map() {
        let mut rng = TestRng::for_test("just");
        let s = Just(41u64).prop_map(|x| x + 1);
        assert_eq!(s.generate(&mut rng), 42);
    }

    #[test]
    fn boxed_strategies_generate_like_their_inner() {
        let mut rng = TestRng::for_test("boxed");
        let s: BoxedStrategy<u64> = (5u64..6).boxed();
        assert_eq!(s.generate(&mut rng), 5);
    }

    #[test]
    fn union_uses_all_arms() {
        let mut rng = TestRng::for_test("union");
        let u = Union::new(vec![Just(1u64).boxed(), Just(2u64).boxed()]);
        let mut saw = [false; 3];
        for _ in 0..100 {
            saw[u.generate(&mut rng) as usize] = true;
        }
        assert!(saw[1] && saw[2]);
    }

    #[test]
    #[should_panic]
    fn empty_union_is_rejected() {
        let _ = Union::<u64>::new(vec![]);
    }
}
