//! Test configuration and the deterministic generator behind the [`proptest!`]
//! macro.
//!
//! [`proptest!`]: crate::proptest

/// How many generated cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The generator driving value production. Seeded from the test's name (FNV-1a), so
/// every run of a given test sees the same input sequence and failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name; any stable hash works.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h | 1 }
    }

    /// Next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample below `bound` (rejection-free multiply-shift).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_carries_cases() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        assert!(ProptestConfig::default().cases > 0);
    }

    #[test]
    fn rng_is_deterministic_and_name_sensitive() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_below() {
        let mut rng = TestRng::for_test("below");
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }
}
