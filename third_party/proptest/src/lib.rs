//! Offline stand-in for the `proptest` crate.
//!
//! The reproduction container has no network access, so this crate vendors the
//! property-testing surface the workspace actually uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` and multiple
//!   `#[test] fn name(pat in strategy) { .. }` items);
//! * [`prop_oneof!`] and the [`Strategy`](strategy::Strategy) trait with `prop_map`;
//! * strategies for integer ranges, tuples, and [`collection::vec`];
//! * [`ProptestConfig::with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Semantics: each test function runs `cases` iterations with freshly generated
//! inputs from a generator seeded deterministically from the test's name, so failures
//! reproduce across runs. **No shrinking** is performed — a failing case panics with
//! the generated value via the assertion message, which for the small op-sequences
//! used in this workspace is adequate to debug from. Swapping the real crate back in
//! (on a networked machine) requires no source changes for the API subset above.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `use proptest::prelude::*;` call site expects to find.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Combine several strategies with the same value type, choosing one uniformly at
/// random for each generated value. (The real proptest also accepts `weight =>`
/// arms; this shim supports the unweighted form used in this workspace.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expand each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) #[test] fn $name:ident $args:tt $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                $crate::__proptest_case! { __rng, $args, $body }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: strip the parens around the bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, ($($bindings:tt)+), $body:block) => {
        $crate::__proptest_bind! { $rng, $body, $($bindings)+ }
    };
}

/// Implementation detail of [`proptest!`]: bind `pat in strategy` pairs, innermost
/// binding last, then run the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block, $parm:pat in $strat:expr) => {{
        let $parm = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $body
    }};
    ($rng:ident, $body:block, $parm:pat in $strat:expr, $($rest:tt)+) => {{
        let $parm = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $body, $($rest)+ }
    }};
}

/// Assert inside a property body (alias of `assert!` — this shim has no rejection
/// bookkeeping to thread a `Result` through).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property body (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u64, u64),
        Del(u64),
    }

    #[test]
    fn ranges_tuples_and_map_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let strat = (0u64..32, 0u64..1000).prop_map(|(k, v)| Op::Put(k, v));
        for _ in 0..500 {
            match strat.generate(&mut rng) {
                Op::Put(k, v) => {
                    assert!(k < 32);
                    assert!(v < 1000);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![
            (0u64..8, 0u64..8).prop_map(|(k, v)| Op::Put(k, v)),
            (0u64..8).prop_map(Op::Del),
        ];
        let mut puts = 0;
        let mut dels = 0;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Op::Put(..) => puts += 1,
                Op::Del(..) => dels += 1,
            }
        }
        assert!(puts > 0 && dels > 0, "puts={puts} dels={dels}");
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::for_test("vec");
        let strat = crate::collection::vec(0u64..10, 1..50);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..50).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strat = crate::collection::vec(0u64..1000, 1..20);
        let mut a = TestRng::for_test("determinism");
        let mut b = TestRng::for_test("determinism");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    // The macro itself, exercised end-to-end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_single_binding(x in 0u64..100) {
            assert!(x < 100);
        }

        #[test]
        fn macro_multiple_bindings(x in 0u64..10, y in 10u64..20) {
            prop_assert!(x < 10);
            prop_assert_eq!(y / 10, 1);
        }

        #[test]
        fn macro_vec_binding(ops in crate::collection::vec(0u64..5, 1..30)) {
            assert!(!ops.is_empty() && ops.len() < 30);
        }
    }
}
