//! Collection strategies ([`vec()`]).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generate `Vec`s whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty length range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_are_in_range() {
        let mut rng = TestRng::for_test("collection");
        let s = vec(0u32..4, 2..9);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }
}
